(* Fault-injection harness for glqld, driven against real daemon
   processes over raw Unix-domain sockets:

     fault <glqld.exe>

   Phase A throws protocol-level abuse at a governed daemon — random
   bytes, a newline-less slow-loris flood, mid-request disconnects, a
   connection-count pile-up, and requests engineered to trip the
   deadline / cell / cost guards — asserting every fault produces a
   structured ERR (machine-readable "code") or a clean drop, that RSS
   stays bounded across repeated floods, and that the daemon still
   answers afterwards.

   Phase B attacks persistence: booting from garbage and truncated
   snapshot files, and SIGKILL racing a SAVE, asserting the
   atomic-rename discipline leaves every snapshot valid-or-absent and
   the next boot healthy.

   Phase C attacks the sharded topology: SIGKILL of a shard worker under
   `--respawn` (the victim's graphs must come back snapshot-warm while
   the other shards never stop answering), and SIGKILL of the router
   itself (the workers must survive as independently addressable daemons
   on their own shard sockets).

   Phase D attacks the v5 mutation path: a pipelined flood of MUTATE
   batches — valid, malformed, and mixed — must produce only structured
   replies with RSS bounded (recoloring seeds count against the
   colouring budget), and MUTATE racing SAVE under SIGKILL must leave
   the snapshot valid-or-absent with the next boot healthy.

   Phase E attacks the v6 model registry: TRAIN racing a MUTATE flood
   must leave MODELS and PREDICT consistent with exactly the
   acknowledged models, and SIGKILL mid-TRAIN must leave the last SAVEd
   snapshot restoring a registry with the persisted model, none of the
   in-flight ones, and no half-written entry.

   Phase F attacks the RETRAIN-on-stale loop: a MUTATE flood racing the
   idle-loop refits must leave every request structurally answered,
   MODELS holding exactly the trained model, and — once the flood stops
   — a PREDICT that settles to stale:false on the final generation. *)

let failures = ref 0

let check name ok =
  if ok then Printf.printf "ok - %s\n%!" name
  else begin
    incr failures;
    Printf.printf "FAIL - %s\n%!" name
  end

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* Daemons spawned so far; killed at exit so a failing harness never
   leaves orphans holding the scratch directory's sockets. *)
let live_daemons : int list ref = ref []

let kill_all () =
  List.iter (fun pid -> try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ()) !live_daemons

let spawn_daemon glqld args ~stdout_file =
  let out_fd = Unix.openfile stdout_file [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o600 in
  (* Pin the pool size so memory behaviour is stable across machines. *)
  let env =
    Array.append (Unix.environment ()) [| "GLQL_DOMAINS=2" |]
  in
  let pid =
    Unix.create_process_env glqld (Array.of_list (glqld :: args)) env Unix.stdin out_fd
      Unix.stderr
  in
  Unix.close out_fd;
  live_daemons := pid :: !live_daemons;
  pid

let wait_exit pid =
  live_daemons := List.filter (fun p -> p <> pid) !live_daemons;
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED code -> Some code
  | _, (Unix.WSIGNALED _ | Unix.WSTOPPED _) -> None

let wait_for_socket sock =
  let deadline = Unix.gettimeofday () +. 15.0 in
  while (not (Sys.file_exists sock)) && Unix.gettimeofday () < deadline do
    ignore (Unix.select [] [] [] 0.05)
  done

(* --- raw client plumbing ------------------------------------------------- *)

let connect sock =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  fd

let send_raw fd s =
  (* EPIPE / ECONNRESET just mean the server already dropped us — for a
     fault harness that is an acceptable outcome of writing at it. *)
  try ignore (Unix.write_substring fd s 0 (String.length s)) with Unix.Unix_error _ -> ()

let send_line fd s = send_raw fd (s ^ "\n")

(* Read one '\n'-terminated line, waiting up to [timeout] seconds.
   Returns [`Line l] (without the newline), [`Eof], or [`Timeout]. *)
let recv_line ?(timeout = 10.0) fd =
  let buf = Buffer.create 256 in
  let byte = Bytes.create 1 in
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    let remaining = deadline -. Unix.gettimeofday () in
    if remaining <= 0.0 then `Timeout
    else
      match Unix.select [ fd ] [] [] remaining with
      | [], _, _ -> `Timeout
      | _ -> (
          match Unix.read fd byte 0 1 with
          | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> `Eof
          | 0 -> `Eof
          | _ ->
              if Bytes.get byte 0 = '\n' then `Line (Buffer.contents buf)
              else begin
                Buffer.add_char buf (Bytes.get byte 0);
                go ()
              end)
  in
  go ()

let recv_eof ?(timeout = 10.0) fd =
  (* Drain until EOF; any stray bytes before it are fine. *)
  let deadline = Unix.gettimeofday () +. timeout in
  let chunk = Bytes.create 4096 in
  let rec go () =
    let remaining = deadline -. Unix.gettimeofday () in
    if remaining <= 0.0 then false
    else
      match Unix.select [ fd ] [] [] remaining with
      | [], _, _ -> false
      | _ -> (
          match Unix.read fd chunk 0 4096 with
          | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> true
          | 0 -> true
          | _ -> go ())
  in
  go ()

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* One-shot request on a fresh connection. *)
let request sock line =
  let fd = connect sock in
  send_line fd line;
  let reply = recv_line fd in
  close_quiet fd;
  reply

let expect_ok sock name line =
  match request sock line with
  | `Line reply -> check name (String.length reply >= 2 && String.sub reply 0 2 = "OK")
  | `Eof | `Timeout -> check name false

let expect_code sock name line code =
  match request sock line with
  | `Line reply ->
      check name
        (String.length reply >= 3
        && String.sub reply 0 3 = "ERR"
        && contains ~needle:(Printf.sprintf "\"code\":%S" code) reply)
  | `Eof | `Timeout -> check name false

(* VmRSS of a pid in kilobytes, from /proc (None off Linux). *)
let vmrss_kb pid =
  let path = Printf.sprintf "/proc/%d/status" pid in
  match open_in path with
  | exception Sys_error _ -> None
  | ic ->
      let rec scan () =
        match input_line ic with
        | exception End_of_file -> None
        | line ->
            if String.length line > 6 && String.sub line 0 6 = "VmRSS:" then
              String.split_on_char ' ' line
              |> List.filter_map int_of_string_opt
              |> function
              | kb :: _ -> Some kb
              | [] -> None
            else scan ()
      in
      let r = scan () in
      close_in ic;
      r

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* The integer after ["field":] in a one-line JSON reply. *)
let json_int_field text field =
  let tag = "\"" ^ field ^ "\":" in
  let tl = String.length tag and n = String.length text in
  let rec find i =
    if i + tl > n then None else if String.sub text i tl = tag then Some (i + tl) else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
      let stop = ref start in
      while !stop < n && (text.[!stop] = '-' || (text.[!stop] >= '0' && text.[!stop] <= '9')) do
        incr stop
      done;
      int_of_string_opt (String.sub text start (!stop - start))

(* Shard [shard]'s primary pid in a TOPOLOGY reply: member objects
   render shard, role, socket, pid in that order. *)
let primary_pid topology shard =
  let tag = Printf.sprintf "\"shard\":%d,\"role\":\"primary\"" shard in
  let tl = String.length tag and n = String.length topology in
  let rec find i =
    if i + tl > n then None
    else if String.sub topology i tl = tag then Some (i + tl)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some after -> json_int_field (String.sub topology after (n - after)) "pid"

let signature_of reply =
  let key = "\"signature\":\"" in
  let kl = String.length key and n = String.length reply in
  let rec find i =
    if i + kl > n then ""
    else if String.sub reply i kl = key then (
      match String.index_from_opt reply (i + kl) '"' with
      | Some stop -> String.sub reply (i + kl) (stop - i - kl)
      | None -> "")
    else find (i + 1)
  in
  find 0

(* --- phase A: protocol abuse against a governed daemon ------------------- *)

let phase_a glqld dir =
  let sock = Filename.concat dir "fault_a.sock" in
  let metrics_file = Filename.concat dir "metrics_a.json" in
  let daemon =
    spawn_daemon glqld
      [
        "--socket"; sock;
        "--timeout"; "0.5";
        "--max-conns"; "4";
        "--max-inbuf"; "65536";
        "--metrics-file"; metrics_file;
      ]
      ~stdout_file:(Filename.concat dir "daemon_a.out")
  in
  wait_for_socket sock;
  check "A: daemon socket appears" (Sys.file_exists sock);
  expect_ok sock "A: baseline PING" "PING";
  expect_ok sock "A: LOAD petersen" "LOAD g petersen";
  expect_ok sock "A: baseline QUERY" "QUERY g 'agg_sum{x2}([1] | E(x1,x2))'";

  (* Random-byte lines: every one of them must come back as a structured
     ERR on a live connection — never a hang, never a crash. *)
  let rng = Random.State.make [| 0x5eed |] in
  let fd = connect sock in
  let garbage_ok = ref true in
  for _ = 1 to 50 do
    let len = 1 + Random.State.int rng 200 in
    let line =
      "Z"
      ^ String.init len (fun _ ->
            let c = Char.chr (Random.State.int rng 256) in
            if c = '\n' || c = '\r' then '.' else c)
    in
    send_line fd line;
    (match recv_line fd with
    | `Line reply ->
        if
          not
            (String.length reply >= 3
            && String.sub reply 0 3 = "ERR"
            && contains ~needle:"\"code\"" reply)
        then garbage_ok := false
    | `Eof | `Timeout -> garbage_ok := false)
  done;
  close_quiet fd;
  check "A: 50 random-byte lines all answered with coded ERR" !garbage_ok;
  expect_ok sock "A: daemon healthy after garbage" "PING";

  (* Slow-loris: newline-less flood past --max-inbuf. The daemon must
     send ERR_LIMIT_INBUF and close; writing stops just past the limit
     so the error line is still readable before EOF. *)
  let flood () =
    let fd = connect sock in
    let block = String.make 8192 'a' in
    for _ = 1 to 9 do
      (* 72 KiB > 64 KiB *)
      send_raw fd block
    done;
    let got_err =
      match recv_line fd with
      | `Line reply -> contains ~needle:"\"code\":\"ERR_LIMIT_INBUF\"" reply
      | `Eof | `Timeout -> false
    in
    let got_eof = recv_eof fd in
    close_quiet fd;
    (got_err, got_eof)
  in
  let err1, eof1 = flood () in
  check "A: slow-loris flood gets ERR_LIMIT_INBUF" err1;
  check "A: flooding connection is closed" eof1;
  (* Repeat the flood; buffered garbage must not accumulate. *)
  for _ = 1 to 4 do
    ignore (flood ())
  done;
  (match vmrss_kb daemon with
  | None -> check "A: RSS bounded after floods (skipped: no /proc)" true
  | Some kb ->
      check (Printf.sprintf "A: RSS bounded after floods (%d KB < 512 MB)" kb)
        (kb < 512 * 1024));
  expect_ok sock "A: daemon healthy after floods" "PING";

  (* Mid-request disconnects: a half-written line, and a pipelined
     request followed by an abrupt close, must both be absorbed. *)
  let fd = connect sock in
  send_raw fd "QUERY g 'agg_su";
  close_quiet fd;
  let fd = connect sock in
  send_raw fd "PING\nQUERY g 'agg_sum{x2}([1] | E(x1,x2))'";
  close_quiet fd;
  ignore (Unix.select [] [] [] 0.1);
  expect_ok sock "A: daemon healthy after mid-request disconnects" "PING";

  (* Connection cap: with 4 idle connections parked, the 5th accept is
     refused with ERR_LIMIT_CONNS and closed immediately. *)
  ignore (Unix.select [] [] [] 0.3) (* let earlier closes be reaped *);
  let parked = List.init 4 (fun _ -> connect sock) in
  ignore (Unix.select [] [] [] 0.2);
  let fd5 = connect sock in
  (match recv_line fd5 with
  | `Line reply ->
      check "A: connection over the cap is refused with ERR_LIMIT_CONNS"
        (contains ~needle:"\"code\":\"ERR_LIMIT_CONNS\"" reply)
  | `Eof | `Timeout -> check "A: connection over the cap is refused with ERR_LIMIT_CONNS" false);
  check "A: refused connection sees EOF" (recv_eof fd5);
  close_quiet fd5;
  List.iter close_quiet parked;
  ignore (Unix.select [] [] [] 0.3);
  expect_ok sock "A: daemon healthy after connection pile-up" "PING";

  (* Guard trips over the wire: a graph big enough that WL overruns the
     0.5 s deadline, 3-WL overruns the cell budget, and HOM the cost
     budget — each with its own code, each leaving the daemon healthy. *)
  expect_ok sock "A: LOAD path20000" "LOAD big path20000";
  expect_code sock "A: WL past the deadline returns ERR_DEADLINE" "WL big" "ERR_DEADLINE";
  expect_code sock "A: 3-WL past the cell budget returns ERR_LIMIT_CELLS" "KWL big 3"
    "ERR_LIMIT_CELLS";
  expect_code sock "A: HOM past the cost budget returns ERR_LIMIT_COST" "HOM big 9"
    "ERR_LIMIT_COST";
  expect_ok sock "A: small work still fine after guard trips" "WL g";

  (* The governance counters surfaced in STATS. *)
  (match request sock "STATS" with
  | `Line stats ->
      check "A: STATS counts rejected connections" (contains ~needle:"\"conns_rejected\":" stats);
      check "A: STATS counts dropped connections" (contains ~needle:"\"conns_dropped\":" stats);
      check "A: at least one rejection recorded"
        (not (contains ~needle:"\"conns_rejected\":0" stats));
      check "A: at least one drop recorded" (not (contains ~needle:"\"conns_dropped\":0" stats))
  | `Eof | `Timeout -> check "A: STATS after faults" false);

  Unix.kill daemon Sys.sigterm;
  check "A: SIGTERM exits cleanly after all faults" (wait_exit daemon = Some 0);
  check "A: metrics dumped after faults" (Sys.file_exists metrics_file)

(* --- phase B: snapshot faults -------------------------------------------- *)

let phase_b glqld dir =
  let snap = Filename.concat dir "fault_b.glqs" in
  let out n = Filename.concat dir (Printf.sprintf "daemon_b%d.out" n) in
  let boot n =
    let sock = Filename.concat dir (Printf.sprintf "fault_b%d.sock" n) in
    let pid = spawn_daemon glqld [ "--socket"; sock; "--snapshot"; snap ] ~stdout_file:(out n) in
    wait_for_socket sock;
    (pid, sock)
  in

  (* Garbage where the snapshot should be: boot must come up cold. *)
  let oc = open_out_bin snap in
  output_string oc "JUNKJUNKJUNKJUNK this is not a snapshot";
  close_out oc;
  let pid1, sock1 = boot 1 in
  expect_ok sock1 "B: boot survives a garbage snapshot" "PING";
  (match request sock1 "STATS" with
  | `Line stats ->
      check "B: garbage snapshot boots cold" (contains ~needle:"\"restored\":null" stats)
  | `Eof | `Timeout -> check "B: garbage snapshot boots cold" false);

  (* Build some state and SAVE it; then race a second SAVE with SIGKILL.
     The atomic tmp+rename write means the target stays the valid first
     snapshot no matter where the kill lands. *)
  expect_ok sock1 "B: LOAD cycle2000" "LOAD g cycle2000";
  expect_ok sock1 "B: WL warms the coloring cache" "WL g";
  expect_ok sock1 "B: LOAD petersen" "LOAD h petersen";
  expect_ok sock1 "B: KWL warms the coloring cache" "KWL h 2";
  expect_ok sock1 "B: first SAVE succeeds" (Printf.sprintf "SAVE %s" snap);
  let fd = connect sock1 in
  send_line fd (Printf.sprintf "SAVE %s" snap);
  Unix.kill pid1 Sys.sigkill;
  ignore (wait_exit pid1);
  close_quiet fd;

  (* Boot from whatever the kill left behind: must be the valid save. *)
  let pid2, sock2 = boot 2 in
  expect_ok sock2 "B: boot after kill-mid-SAVE" "PING";
  (match request sock2 "STATS" with
  | `Line stats ->
      check "B: kill-mid-SAVE leaves a restorable snapshot"
        (contains ~needle:"\"restored\":{" stats)
  | `Eof | `Timeout -> check "B: kill-mid-SAVE leaves a restorable snapshot" false);
  (match request sock2 "WL g" with
  | `Line reply ->
      check "B: restored coloring answers warm"
        (String.sub reply 0 2 = "OK" && contains ~needle:"\"coloring_cache\":\"hit\"" reply)
  | `Eof | `Timeout -> check "B: restored coloring answers warm" false);
  Unix.kill pid2 Sys.sigkill;
  ignore (wait_exit pid2);

  (* Truncate the snapshot mid-container: the CRC framing must reject it
     and the daemon boot cold, not crash. *)
  let whole = read_file snap in
  let oc = open_out_bin snap in
  output_string oc (String.sub whole 0 (min 20 (String.length whole)));
  close_out oc;
  let pid3, sock3 = boot 3 in
  expect_ok sock3 "B: boot survives a truncated snapshot" "PING";
  (match request sock3 "STATS" with
  | `Line stats ->
      check "B: truncated snapshot boots cold" (contains ~needle:"\"restored\":null" stats)
  | `Eof | `Timeout -> check "B: truncated snapshot boots cold" false);
  Unix.kill pid3 Sys.sigterm;
  check "B: clean exit after snapshot faults" (wait_exit pid3 = Some 0)

(* --- phase C: sharded-topology faults ------------------------------------ *)

let phase_c glqld dir =
  let sock = Filename.concat dir "fault_c.sock" in
  let router =
    spawn_daemon glqld
      [ "--router"; "--workers"; "3"; "--respawn"; "--socket"; sock ]
      ~stdout_file:(Filename.concat dir "router_c.out")
  in
  wait_for_socket sock;
  check "C: router front socket appears" (Sys.file_exists sock);
  expect_ok sock "C: baseline PING through the router" "PING";

  (* Two graphs on two different shards: the victim's and a bystander's.
     ROUTE is the router's own placement oracle, so the harness needs no
     knowledge of the hash function. *)
  let shard_of name =
    match request sock (Printf.sprintf "ROUTE %s" name) with
    | `Line reply -> json_int_field reply "shard"
    | `Eof | `Timeout -> None
  in
  let candidates = [ "ga"; "gb"; "gc"; "gd"; "ge" ] in
  let victim_graph = List.hd candidates in
  let victim_shard = shard_of victim_graph in
  let bystander =
    List.find_opt (fun g -> shard_of g <> victim_shard && shard_of g <> None) (List.tl candidates)
  in
  check "C: two graphs land on different shards" (victim_shard <> None && bystander <> None);
  let victim_shard = Option.value ~default:0 victim_shard in
  let bystander = Option.value ~default:"gb" bystander in
  expect_ok sock "C: LOAD victim graph" (Printf.sprintf "LOAD %s petersen" victim_graph);
  expect_ok sock "C: LOAD bystander graph" (Printf.sprintf "LOAD %s cycle12" bystander);
  let wl g =
    match request sock (Printf.sprintf "WL %s" g) with
    | `Line reply -> Some reply
    | `Eof | `Timeout -> None
  in
  let sig_before =
    match wl victim_graph with
    | Some reply when String.length reply >= 2 && String.sub reply 0 2 = "OK" -> signature_of reply
    | _ -> ""
  in
  check "C: victim WL answers before the kill" (sig_before <> "");
  (* A bare SAVE fans out to every primary's own --snapshot default —
     the same file `--respawn` restores from. *)
  expect_ok sock "C: fleet-wide SAVE" "SAVE";

  (* SIGKILL the victim's worker. With --respawn the router must bring a
     replacement up from the snapshot; until then the victim's graphs
     fail fast with ERR_SHARD_DOWN and the bystander never misses. *)
  let topology =
    match request sock "TOPOLOGY" with `Line reply -> reply | `Eof | `Timeout -> ""
  in
  let victim_pid = primary_pid topology victim_shard in
  check "C: TOPOLOGY names the victim's pid" (victim_pid <> None);
  (match victim_pid with Some pid -> Unix.kill pid Sys.sigkill | None -> ());
  (match wl bystander with
  | Some reply ->
      check "C: bystander shard answers during the outage"
        (String.length reply >= 2 && String.sub reply 0 2 = "OK")
  | None -> check "C: bystander shard answers during the outage" false);
  let deadline = Unix.gettimeofday () +. 15.0 in
  let recovered = ref None in
  while !recovered = None && Unix.gettimeofday () < deadline do
    (match wl victim_graph with
    | Some reply when String.length reply >= 2 && String.sub reply 0 2 = "OK" ->
        recovered := Some reply
    | Some reply ->
        (* The only acceptable failure during the window is the scoped
           shard-down error — anything else is a bug. *)
        if not (contains ~needle:"\"code\":\"ERR_SHARD_DOWN\"" reply) then begin
          check (Printf.sprintf "C: outage error is ERR_SHARD_DOWN (got %s)" reply) false;
          recovered := Some reply
        end
    | None -> ());
    if !recovered = None then ignore (Unix.select [] [] [] 0.2)
  done;
  (match !recovered with
  | Some reply when String.length reply >= 2 && String.sub reply 0 2 = "OK" ->
      check "C: respawned worker recovers the victim's graphs" true;
      check "C: recovery is snapshot-warm, not recomputed"
        (contains ~needle:"\"coloring_cache\":\"hit\"" reply);
      check "C: recovered WL signature matches pre-kill" (signature_of reply = sig_before)
  | _ -> check "C: respawned worker recovers the victim's graphs" false);

  (* SIGKILL the router itself: the workers are independent daemons and
     must keep answering directly on their own shard sockets. *)
  let topology2 =
    match request sock "TOPOLOGY" with `Line reply -> reply | `Eof | `Timeout -> ""
  in
  let worker_pids = List.filter_map (fun s -> primary_pid topology2 s) [ 0; 1; 2 ] in
  check "C: TOPOLOGY lists all three workers" (List.length worker_pids = 3);
  List.iter (fun pid -> live_daemons := pid :: !live_daemons) worker_pids;
  Unix.kill router Sys.sigkill;
  ignore (wait_exit router);
  ignore (Unix.select [] [] [] 0.3);
  let victim_sock = Printf.sprintf "%s.shard%d" sock victim_shard in
  expect_ok victim_sock "C: orphaned worker answers directly on its shard socket"
    (Printf.sprintf "WL %s" victim_graph);
  List.iter
    (fun s ->
      expect_ok
        (Printf.sprintf "%s.shard%d" sock s)
        (Printf.sprintf "C: worker for shard %d survives the router" s)
        "PING")
    [ 0; 1; 2 ];
  (* Cleanup by pid: with the router gone, the harness is the only thing
     that knows the workers exist. *)
  List.iter (fun pid -> try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ()) worker_pids;
  (* The workers were reparented when the router died, so they cannot be
     waited on — poll until each is gone (or a zombie awaiting init). *)
  let gone pid =
    match Unix.kill pid 0 with
    | exception Unix.Unix_error (Unix.ESRCH, _, _) -> true
    | exception Unix.Unix_error _ -> false
    | () -> (
        match read_file (Printf.sprintf "/proc/%d/stat" pid) with
        | exception Sys_error _ -> false
        | stat -> contains ~needle:") Z" stat)
  in
  let deadline = Unix.gettimeofday () +. 10.0 in
  while (not (List.for_all gone worker_pids)) && Unix.gettimeofday () < deadline do
    ignore (Unix.select [] [] [] 0.2)
  done;
  check "C: workers drain on SIGTERM after the router is gone" (List.for_all gone worker_pids)

(* --- phase D: mutation faults --------------------------------------------- *)

let phase_d glqld dir =
  let sock = Filename.concat dir "fault_d.sock" in
  let snap = Filename.concat dir "fault_d.glqs" in
  let daemon =
    spawn_daemon glqld
      [ "--socket"; sock; "--snapshot"; snap ]
      ~stdout_file:(Filename.concat dir "daemon_d.out")
  in
  wait_for_socket sock;
  check "D: daemon socket appears" (Sys.file_exists sock);
  expect_ok sock "D: LOAD cycle2000" "LOAD g cycle2000";
  expect_ok sock "D: WL warms the coloring cache" "WL g";

  (* Mutation flood: hundreds of MUTATE batches down one pipelined
     connection — adds, deletes, relabels, multi-section batches, and
     deliberately malformed ones. Every line must come back as a
     structured one-line OK or coded ERR (never a hang, never a drop),
     each mutated generation leaves a recoloring seed behind, and RSS
     must stay bounded: seeds count against the colouring budget, so a
     flood of them cannot accumulate. *)
  let fd = connect sock in
  let flood_ok = ref true in
  for i = 0 to 399 do
    let u = i mod 2000 and v = ((i * 7) + 3) mod 2000 in
    let line =
      match i mod 5 with
      | 0 -> Printf.sprintf "MUTATE g ADD_EDGES %d %d" u v
      | 1 -> Printf.sprintf "MUTATE g DEL_EDGES %d %d" u v
      | 2 -> Printf.sprintf "MUTATE g SET_LABEL %d %d.5" u (i mod 9)
      | 3 -> Printf.sprintf "MUTATE g ADD_EDGES %d" u (* odd vertex count *)
      | _ ->
          Printf.sprintf "MUTATE g ADD_EDGES %d %d DEL_EDGES %d %d SET_LABEL %d 1.0" u v v u
            u
    in
    send_line fd line;
    match recv_line fd with
    | `Line reply ->
        let ok2 = String.length reply >= 2 && String.sub reply 0 2 = "OK" in
        let err =
          String.length reply >= 3
          && String.sub reply 0 3 = "ERR"
          && contains ~needle:"\"code\"" reply
        in
        if not (ok2 || err) then flood_ok := false
    | `Eof | `Timeout -> flood_ok := false
  done;
  close_quiet fd;
  check "D: 400 mutation batches all answered with OK or coded ERR" !flood_ok;
  (match vmrss_kb daemon with
  | None -> check "D: RSS bounded after the mutation flood (skipped: no /proc)" true
  | Some kb ->
      check (Printf.sprintf "D: RSS bounded after the mutation flood (%d KB < 512 MB)" kb)
        (kb < 512 * 1024));
  expect_ok sock "D: daemon healthy after the flood" "PING";
  (match request sock "WL g" with
  | `Line reply ->
      check "D: WL answers on the flood-mutated graph"
        (String.length reply >= 2 && String.sub reply 0 2 = "OK")
  | `Eof | `Timeout -> check "D: WL answers on the flood-mutated graph" false);

  (* MUTATE racing SAVE, then SIGKILL mid-save: after one good SAVE the
     atomic tmp+rename discipline means the target must stay a valid
     snapshot no matter how the race with in-flight mutations lands, and
     the next boot must come up healthy with the graph restorable. *)
  expect_ok sock "D: first SAVE succeeds" (Printf.sprintf "SAVE %s" snap);
  let fd_save = connect sock and fd_mut = connect sock in
  for i = 0 to 9 do
    send_line fd_mut (Printf.sprintf "MUTATE g ADD_EDGES %d %d" (i * 3) ((i * 3) + 997));
    send_line fd_save (Printf.sprintf "SAVE %s" snap)
  done;
  Unix.kill daemon Sys.sigkill;
  ignore (wait_exit daemon);
  close_quiet fd_save;
  close_quiet fd_mut;
  let sock2 = Filename.concat dir "fault_d2.sock" in
  let pid2 =
    spawn_daemon glqld [ "--socket"; sock2; "--snapshot"; snap ]
      ~stdout_file:(Filename.concat dir "daemon_d2.out")
  in
  wait_for_socket sock2;
  expect_ok sock2 "D: boot after MUTATE racing SAVE" "PING";
  (match request sock2 "STATS" with
  | `Line stats ->
      check "D: the raced snapshot is still restorable" (contains ~needle:"\"restored\":{" stats)
  | `Eof | `Timeout -> check "D: the raced snapshot is still restorable" false);
  (match request sock2 "WL g" with
  | `Line reply ->
      check "D: restored graph answers after the race"
        (String.length reply >= 2 && String.sub reply 0 2 = "OK")
  | `Eof | `Timeout -> check "D: restored graph answers after the race" false);
  Unix.kill pid2 Sys.sigterm;
  check "D: clean exit after mutation faults" (wait_exit pid2 = Some 0)

(* --- phase E: model registry under races and SIGKILL --------------------- *)

let phase_e glqld dir =
  let sock = Filename.concat dir "fault_e.sock" in
  let snap = Filename.concat dir "fault_e.glqs" in
  let daemon =
    spawn_daemon glqld
      [ "--socket"; sock; "--snapshot"; snap ]
      ~stdout_file:(Filename.concat dir "daemon_e.out")
  in
  wait_for_socket sock;
  check "E: daemon socket appears" (Sys.file_exists sock);
  expect_ok sock "E: LOAD cycle2000" "LOAD g cycle2000";
  let train_line name epochs =
    Printf.sprintf "TRAIN %s ON g WITH 'deg;label' TARGET 'agg_sum{x2}([1] | E(x1,x2))' EPOCHS %d"
      name epochs
  in

  (* TRAIN racing MUTATE: one connection trains race0..race19 while a
     second fires mutation batches at the same graph between them. Both
     streams must answer every line with a structured OK or coded ERR
     (the recipe avoids wl, so widths are mutation-stable and a TRAIN
     that loses the race still succeeds on the generation it read), and
     the registry must end internally consistent: MODELS lists exactly
     the models whose TRAIN was acknowledged, and each answers PREDICT. *)
  let fd_train = connect sock and fd_mut = connect sock in
  let trained = ref [] and race_ok = ref true in
  let structured reply =
    (String.length reply >= 2 && String.sub reply 0 2 = "OK")
    || String.length reply >= 3
       && String.sub reply 0 3 = "ERR"
       && contains ~needle:"\"code\"" reply
  in
  for i = 0 to 19 do
    let name = Printf.sprintf "race%d" i in
    send_line fd_mut
      (Printf.sprintf "MUTATE g ADD_EDGES %d %d SET_LABEL %d 2.0" i ((i * 13) + 7) i);
    send_line fd_train (train_line name 5);
    (match recv_line fd_train with
    | `Line reply ->
        if String.length reply >= 2 && String.sub reply 0 2 = "OK" then
          trained := name :: !trained
        else if not (structured reply) then race_ok := false
    | `Eof | `Timeout -> race_ok := false);
    match recv_line fd_mut with
    | `Line reply -> if not (structured reply) then race_ok := false
    | `Eof | `Timeout -> race_ok := false
  done;
  close_quiet fd_train;
  close_quiet fd_mut;
  check "E: TRAIN racing MUTATE: every line answered OK or coded ERR" !race_ok;
  check "E: at least one raced TRAIN succeeded" (!trained <> []);
  (match request sock "MODELS" with
  | `Line reply ->
      check "E: MODELS lists every acknowledged model"
        (String.length reply >= 2
        && String.sub reply 0 2 = "OK"
        && List.for_all
             (fun name -> contains ~needle:(Printf.sprintf "\"name\":%S" name) reply)
             !trained)
  | `Eof | `Timeout -> check "E: MODELS lists every acknowledged model" false);
  (match request sock (Printf.sprintf "PREDICT %s g 0 1 2" (List.hd !trained)) with
  | `Line reply ->
      check "E: raced model answers PREDICT"
        (String.length reply >= 2 && String.sub reply 0 2 = "OK"
        && contains ~needle:"\"stale\":" reply)
  | `Eof | `Timeout -> check "E: raced model answers PREDICT" false);

  (* SIGKILL mid-TRAIN: persist one known-good model, then pipeline a
     burst of TRAINs and kill the daemon without reading the replies.
     The registry write happens only after a TRAIN completes and the
     snapshot only changes on SAVE, so the file on disk must restore a
     registry that has the saved model, none of the doomed ones, and
     no half-written entry wedging MODELS or PREDICT. *)
  expect_ok sock "E: keeper model trains" (train_line "keeper" 5);
  expect_ok sock "E: SAVE with models succeeds" (Printf.sprintf "SAVE %s" snap);
  let fd_kill = connect sock in
  for i = 0 to 9 do
    send_line fd_kill (train_line (Printf.sprintf "doomed%d" i) 400)
  done;
  ignore (Unix.select [] [] [] 0.2);
  Unix.kill daemon Sys.sigkill;
  ignore (wait_exit daemon);
  close_quiet fd_kill;
  let sock2 = Filename.concat dir "fault_e2.sock" in
  let pid2 =
    spawn_daemon glqld [ "--socket"; sock2; "--snapshot"; snap ]
      ~stdout_file:(Filename.concat dir "daemon_e2.out")
  in
  wait_for_socket sock2;
  expect_ok sock2 "E: boot after SIGKILL mid-TRAIN" "PING";
  (match request sock2 "MODELS" with
  | `Line reply ->
      check "E: restored registry holds the saved model and no doomed ones"
        (String.length reply >= 2
        && String.sub reply 0 2 = "OK"
        && contains ~needle:"\"name\":\"keeper\"" reply
        && not (contains ~needle:"doomed" reply))
  | `Eof | `Timeout ->
      check "E: restored registry holds the saved model and no doomed ones" false);
  (match request sock2 "PREDICT keeper g 0 1 2" with
  | `Line reply ->
      check "E: saved model answers PREDICT after the crash"
        (String.length reply >= 2 && String.sub reply 0 2 = "OK")
  | `Eof | `Timeout -> check "E: saved model answers PREDICT after the crash" false);
  Unix.kill pid2 Sys.sigterm;
  check "E: clean exit after model faults" (wait_exit pid2 = Some 0)

(* --- phase F: MUTATE flood racing the RETRAIN-on-stale loop --------------- *)

let phase_f glqld dir =
  let sock = Filename.concat dir "fault_f.sock" in
  let daemon =
    spawn_daemon glqld
      [ "--socket"; sock; "--retrain-stale"; "0.2" ]
      ~stdout_file:(Filename.concat dir "daemon_f.out")
  in
  wait_for_socket sock;
  check "F: daemon socket appears" (Sys.file_exists sock);
  expect_ok sock "F: LOAD cycle2000" "LOAD g cycle2000";
  (* The recipe avoids wl so its widths are mutation-stable: every
     idle-loop refit against a drifted generation must succeed rather
     than trip ERR_SCHEMA_MISMATCH. *)
  expect_ok sock "F: model trains"
    "TRAIN live ON g WITH 'deg;label' TARGET 'agg_sum{x2}([1] | E(x1,x2))' EPOCHS 5";

  (* Flood mutations down one connection while a second interleaves
     PREDICTs, with the refit loop racing both from the idle path. Every
     line on both streams must come back structured — a refit holding a
     lock across the request path would surface here as a timeout. *)
  let structured reply =
    (String.length reply >= 2 && String.sub reply 0 2 = "OK")
    || String.length reply >= 3
       && String.sub reply 0 3 = "ERR"
       && contains ~needle:"\"code\"" reply
  in
  let fd_mut = connect sock and fd_pred = connect sock in
  let race_ok = ref true in
  for i = 0 to 199 do
    send_line fd_mut
      (Printf.sprintf "MUTATE g ADD_EDGES %d %d" (i mod 2000) (((i * 11) + 5) mod 2000));
    (match recv_line fd_mut with
    | `Line reply -> if not (structured reply) then race_ok := false
    | `Eof | `Timeout -> race_ok := false);
    if i mod 10 = 0 then begin
      send_line fd_pred "PREDICT live g 0 1 2";
      match recv_line fd_pred with
      | `Line reply ->
          if not (String.length reply >= 2 && String.sub reply 0 2 = "OK") then
            race_ok := false
      | `Eof | `Timeout -> race_ok := false
    end;
    (* Let the 0.2 s refit timer overlap the flood rather than only
       trail it. *)
    if i mod 50 = 49 then ignore (Unix.select [] [] [] 0.25)
  done;
  close_quiet fd_mut;
  close_quiet fd_pred;
  check "F: MUTATE flood racing retrain: every line answered structurally" !race_ok;
  (match vmrss_kb daemon with
  | None -> check "F: RSS bounded under the retrain race (skipped: no /proc)" true
  | Some kb ->
      check (Printf.sprintf "F: RSS bounded under the retrain race (%d KB < 512 MB)" kb)
        (kb < 512 * 1024));

  (* Quiescence: with the flood stopped, the idle loop must converge the
     model onto the final generation — PREDICT settles at stale:false
     and stays structurally sound. *)
  let deadline = Unix.gettimeofday () +. 15.0 in
  let settled = ref false in
  while (not !settled) && Unix.gettimeofday () < deadline do
    (match request sock "PREDICT live g 0 1 2" with
    | `Line reply
      when String.length reply >= 2
           && String.sub reply 0 2 = "OK"
           && contains ~needle:"\"stale\":false" reply ->
        settled := true
    | _ -> ());
    if not !settled then ignore (Unix.select [] [] [] 0.2)
  done;
  check "F: PREDICT settles to stale:false after the flood" !settled;
  (match request sock "MODELS" with
  | `Line reply ->
      let occurrences needle s =
        let nl = String.length needle and sl = String.length s in
        let count = ref 0 in
        for i = 0 to sl - nl do
          if String.sub s i nl = needle then incr count
        done;
        !count
      in
      check "F: MODELS holds exactly the trained model"
        (String.length reply >= 2
        && String.sub reply 0 2 = "OK"
        && contains ~needle:"\"name\":\"live\"" reply
        && occurrences "\"name\":" reply = 1)
  | `Eof | `Timeout -> check "F: MODELS holds exactly the trained model" false);
  (match request sock "STATS" with
  | `Line stats ->
      check "F: STATS counts idle-loop refits"
        (match json_int_field stats "retrains_stale" with Some n -> n >= 1 | None -> false)
  | `Eof | `Timeout -> check "F: STATS counts idle-loop refits" false);
  Unix.kill daemon Sys.sigterm;
  check "F: clean exit after the retrain race" (wait_exit daemon = Some 0)

let () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  at_exit kill_all;
  let glqld =
    match Sys.argv with
    | [| _; d |] -> d
    | _ ->
        prerr_endline "usage: fault <glqld.exe>";
        exit 2
  in
  let dir = Filename.temp_file "glqld_fault" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  phase_a glqld dir;
  phase_b glqld dir;
  phase_c glqld dir;
  phase_d glqld dir;
  phase_e glqld dir;
  phase_f glqld dir;
  Array.iter
    (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (Sys.readdir dir);
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  if !failures > 0 then begin
    Printf.printf "%d fault-injection check(s) failed\n%!" !failures;
    exit 1
  end;
  print_endline "all fault-injection checks passed"
