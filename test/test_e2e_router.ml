(* End-to-end test of the sharded topology, driven through real
   processes:

     test_e2e_router <glqld.exe> <glql_client.exe>

   Boots a single-process glqld (the reference) and a 3-shard
   `glqld --router` side by side, runs the full v4 command set against
   both through glql_client, and asserts the router's replies are
   byte-identical for every deterministic command. Then SIGKILLs one
   worker and asserts ERR_SHARD_DOWN is scoped to that shard's graphs
   while the others keep answering; spawns a snapshot-warmed replica and
   asserts it serves WL signatures identical to (and cache-warm from)
   its primary; and finally SIGTERMs the router and asserts the clean
   drain: exit 0, front socket unlinked, every worker terminated. *)

let failures = ref 0

let check name ok =
  if ok then Printf.printf "ok - %s\n%!" name
  else begin
    incr failures;
    Printf.printf "FAIL - %s\n%!" name
  end

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let json_int_field text field =
  let tag = "\"" ^ field ^ "\":" in
  let tl = String.length tag and n = String.length text in
  let rec find i =
    if i + tl > n then None else if String.sub text i tl = tag then Some (i + tl) else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
      let stop = ref start in
      while !stop < n && (text.[!stop] = '-' || (text.[!stop] >= '0' && text.[!stop] <= '9')) do
        incr stop
      done;
      int_of_string_opt (String.sub text start (!stop - start))

(* The pid of shard [shard]'s primary in a TOPOLOGY reply: member
   objects print shard, role, socket, pid in that order. *)
let primary_pid topology shard =
  let tag = Printf.sprintf "\"shard\":%d,\"role\":\"primary\"" shard in
  let tl = String.length tag and n = String.length topology in
  let rec find i =
    if i + tl > n then None
    else if String.sub topology i tl = tag then Some (i + tl)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some after -> json_int_field (String.sub topology after (n - after)) "pid"

let signature_of reply =
  let key = "\"signature\":\"" in
  let kl = String.length key and n = String.length reply in
  let rec find i =
    if i + kl > n then ""
    else if String.sub reply i kl = key then (
      match String.index_from_opt reply (i + kl) '"' with
      | Some stop -> String.sub reply (i + kl) (stop - i - kl)
      | None -> "")
    else find (i + 1)
  in
  find 0

let spawn exe args ~stdout_file =
  let out_fd = Unix.openfile stdout_file [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o600 in
  let pid = Unix.create_process exe (Array.of_list (exe :: args)) Unix.stdin out_fd Unix.stderr in
  Unix.close out_fd;
  pid

let wait_exit pid =
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED code -> Some code
  | _, (Unix.WSIGNALED _ | Unix.WSTOPPED _) -> None

let alive pid =
  match Unix.kill pid 0 with
  | () -> true
  | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
  | exception Unix.Unix_error _ -> true

let () =
  let glqld, client =
    match Sys.argv with
    | [| _; d; c |] -> (d, c)
    | _ ->
        prerr_endline "usage: test_e2e_router <glqld.exe> <glql_client.exe>";
        exit 2
  in
  let dir = Filename.temp_file "glqld_e2e_router" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let single_sock = Filename.concat dir "single.sock" in
  let router_sock = Filename.concat dir "router.sock" in
  let counter = ref 0 in
  let out () =
    incr counter;
    Filename.concat dir (Printf.sprintf "out%d.txt" !counter)
  in
  let wait_for path =
    let deadline = Unix.gettimeofday () +. 20.0 in
    while (not (Sys.file_exists path)) && Unix.gettimeofday () < deadline do
      ignore (Unix.select [] [] [] 0.05)
    done
  in

  (* Both sides run the RETRAIN-on-stale policy at the same cadence, so
     refreshed models stay byte-identical between the fleet and the
     reference daemon (the refit is deterministic from the stored spec). *)
  let single =
    spawn glqld
      [ "--socket"; single_sock; "--retrain-stale"; "0.4" ]
      ~stdout_file:(Filename.concat dir "single.out")
  in
  let router =
    spawn glqld
      (* Short probe interval so the health-probe counters observably
         tick within the lifetime of this test. *)
      [
        "--router"; "--workers"; "3"; "--socket"; router_sock; "--probe-interval"; "0.2";
        "--retrain-stale"; "0.4";
      ]
      ~stdout_file:(Filename.concat dir "router.out")
  in
  wait_for single_sock;
  wait_for router_sock;
  check "single daemon socket appears" (Sys.file_exists single_sock);
  check "router front socket appears" (Sys.file_exists router_sock);

  let run sock args =
    let f = out () in
    let pid = spawn client ([ "--socket"; sock ] @ args) ~stdout_file:f in
    let code = wait_exit pid in
    (code, String.trim (read_file f))
  in

  (* The full v4 command set, replies byte-identical to one process.
     EXPLAIN and STATS carry timings and so are compared structurally
     below; everything else must match to the byte. *)
  let gel = "agg_sum{x2}([1] | E(x1,x2))" in
  let deterministic =
    [
      [ "PING" ];
      [ "LOAD"; "a"; "petersen" ];
      [ "LOAD"; "b"; "grid5x5" ];
      [ "LOAD"; "c"; "cycle12" ];
      [ "LOAD"; "d"; "path30" ];
      [ "QUERY"; "a"; gel ];
      [ "QUERY"; "a"; gel ];
      (* second run: plan-cache hit on both sides *)
      [ "WL"; "b" ];
      [ "KWL"; "a"; "2" ];
      [ "HOM"; "c"; "5" ];
      [ "WL"; "cycle6+cycle3" ];
      (* spec-as-name routing *)
      [ "GRAPHS" ];
      [ "GENERATORS" ];
      [ "VERSION" ];
    ]
  in
  List.iter
    (fun args ->
      let label = String.concat " " args in
      let code_s, reply_s = run single_sock args in
      let code_r, reply_r = run router_sock args in
      check (Printf.sprintf "[%s] exit codes agree" label) (code_s = Some 0 && code_r = code_s);
      check (Printf.sprintf "[%s] byte-identical reply" label)
        (reply_s = reply_r && String.length reply_r > 0))
    deterministic;

  (* EXPLAIN: timings differ between processes, shape must not. *)
  let _, explain = run router_sock [ "EXPLAIN"; "a"; gel ] in
  check "EXPLAIN through the router is ok" (contains ~needle:"OK {" explain);
  check "EXPLAIN reports stages through the router"
    (contains ~needle:"\"stage\":\"execute\"" explain);

  (* STATS: merged across shards, with the per-shard counters summing to
     the top-level mirror (4 graphs live in the fleet). *)
  let _, stats = run router_sock [ "STATS" ] in
  check "STATS through the router is ok" (contains ~needle:"OK {" stats);
  check "STATS counts the fleet's graphs"
    (json_int_field stats "graphs_registered" = Some 5);
  check "STATS carries per-member detail" (contains ~needle:"\"members\":[" stats);
  check "STATS carries the router section" (contains ~needle:"\"role\":\"router\"" stats);

  (* Placement: find the victim (shard of "a") and a survivor graph on a
     different shard. ROUTE is the router's own placement oracle. *)
  let _, route_a = run router_sock [ "ROUTE"; "a" ] in
  let shard_a = match json_int_field route_a "shard" with Some s -> s | None -> -1 in
  check "ROUTE names a's shard" (shard_a >= 0);
  let survivor =
    List.find_opt
      (fun g ->
        let _, r = run router_sock [ "ROUTE"; g ] in
        json_int_field r "shard" <> Some shard_a)
      [ "b"; "c"; "d" ]
  in
  check "some graph lives on another shard" (survivor <> None);
  let survivor = match survivor with Some g -> g | None -> "b" in
  let _, route_s = run router_sock [ "ROUTE"; survivor ] in
  let shard_s = match json_int_field route_s "shard" with Some s -> s | None -> -1 in

  (* Warm the survivor's colouring so the replica snapshot ships it. *)
  let _, wl_before = run router_sock [ "WL"; survivor ] in
  check "survivor WL ok before the kill" (signature_of wl_before <> "");

  (* SIGKILL the victim's worker: its graphs fail with ERR_SHARD_DOWN,
     every other shard keeps answering. *)
  let _, topology = run router_sock [ "TOPOLOGY" ] in
  let victim_pid = primary_pid topology shard_a in
  check "TOPOLOGY names the victim pid" (victim_pid <> None);
  (match victim_pid with Some pid -> Unix.kill pid Sys.sigkill | None -> ());
  ignore (Unix.select [] [] [] 0.6);
  let code_dead, dead_reply = run router_sock [ "WL"; "a" ] in
  check "dead shard's graph exits 1" (code_dead = Some 1);
  check "dead shard's graph fails with ERR_SHARD_DOWN"
    (contains ~needle:"ERR_SHARD_DOWN" dead_reply);
  let code_live, live_reply = run router_sock [ "WL"; survivor ] in
  check "other shards keep answering" (code_live = Some 0);
  check "surviving WL signature unchanged" (signature_of live_reply = signature_of wl_before);
  let code_graphs, graphs_degraded = run router_sock [ "GRAPHS" ] in
  check "GRAPHS still answers degraded"
    (code_graphs = Some 0 && contains ~needle:(Printf.sprintf "\"name\":\"%s\"" survivor) graphs_degraded);

  (* Replica fan-out: REPLICA ships a snapshot from the survivor's
     primary and boots a warm worker. Both round-robin targets must then
     serve the identical WL signature — and both from their colouring
     caches, proving the replica really booted from the shipped
     snapshot rather than recomputing. *)
  let code_rep, rep_reply = run router_sock [ "REPLICA"; string_of_int shard_s ] in
  check "REPLICA replies ok" (code_rep = Some 0 && contains ~needle:"\"role\":\"replica1\"" rep_reply);
  let _, wl_1 = run router_sock [ "WL"; survivor ] in
  let _, wl_2 = run router_sock [ "WL"; survivor ] in
  check "replica serves the primary's WL signature"
    (signature_of wl_1 = signature_of wl_before && signature_of wl_2 = signature_of wl_before);
  check "both round-robin targets answer from warm colouring caches"
    (contains ~needle:"\"coloring_cache\":\"hit\"" wl_1
    && contains ~needle:"\"coloring_cache\":\"hit\"" wl_2);

  (* MUTATE through the router: routed to the survivor's primary and
     mirrored to its replica, so the stale colouring is invalidated on
     BOTH round-robin targets — the next two WLs (one per target) must
     recompute and agree on the new signature, and the pair after that
     come back warm. The WL replies themselves are v4 read-path bytes:
     they must stay identical to a single-process daemon applying the
     same mutation. *)
  let code_mut, mut_reply = run router_sock [ "MUTATE"; survivor; "ADD_EDGES"; "0"; "2" ] in
  check "MUTATE through the router exits 0" (code_mut = Some 0);
  check "MUTATE reply reports the applied batch"
    (contains ~needle:"\"applied\":{\"add_edges\":1,\"del_edges\":0,\"set_labels\":0}" mut_reply
    && json_int_field mut_reply "generation" <> None);
  let _, wl_m1 = run router_sock [ "WL"; survivor ] in
  let _, wl_m2 = run router_sock [ "WL"; survivor ] in
  check "both targets recompute after the mutation"
    (contains ~needle:"\"coloring_cache\":\"miss\"" wl_m1
    && contains ~needle:"\"coloring_cache\":\"miss\"" wl_m2);
  check "both targets agree on the post-mutate signature"
    (signature_of wl_m1 <> ""
    && signature_of wl_m1 = signature_of wl_m2
    && signature_of wl_m1 <> signature_of wl_before);
  let _, wl_m3 = run router_sock [ "WL"; survivor ] in
  let _, wl_m4 = run router_sock [ "WL"; survivor ] in
  check "both targets warm again on the new generation"
    (contains ~needle:"\"coloring_cache\":\"hit\"" wl_m3
    && contains ~needle:"\"coloring_cache\":\"hit\"" wl_m4);
  let _, single_mut = run single_sock [ "MUTATE"; survivor; "ADD_EDGES"; "0"; "2" ] in
  check "single daemon applies the same batch"
    (contains ~needle:"\"applied\":{\"add_edges\":1,\"del_edges\":0,\"set_labels\":0}" single_mut);
  let _, wl_single = run single_sock [ "WL"; survivor ] in
  check "post-mutate WL byte-identical single vs router"
    (wl_single = wl_m1 && String.length wl_single > 0);

  (* Model serving through the router (protocol v6): TRAIN routes to
     the survivor's primary and mirrors to its replica, PREDICT
     round-robins across both — and since the PREDICT reply carries no
     generation numbers, both targets must answer byte-identically to a
     single daemon fitting the same spec on the same mutated graph.
     (TRAIN and MODELS replies embed registry generations, which differ
     between a fleet and one process, so those are checked
     structurally.) The recipe avoids wl: its widths survive the chord
     added above. *)
  let train_args =
    [ "--train"; "m"; "ON"; survivor; "WITH"; "deg;hom3;label"; "TARGET"; gel; "EPOCHS"; "10" ]
  in
  let code_tr, tr_router = run router_sock train_args in
  let code_ts, tr_single = run single_sock train_args in
  check "TRAIN through the router exits 0"
    (code_tr = Some 0 && contains ~needle:"\"loss_final\"" tr_router);
  check "TRAIN on the single daemon exits 0"
    (code_ts = Some 0 && contains ~needle:"\"loss_final\"" tr_single);
  let predict_args = [ "--predict"; "m"; survivor; "0"; "1"; "2" ] in
  let _, pr_1 = run router_sock predict_args in
  let _, pr_2 = run router_sock predict_args in
  let _, pr_single = run single_sock predict_args in
  check "both PREDICT round-robin targets byte-identical to a single daemon"
    (pr_1 = pr_single && pr_2 = pr_single && String.length pr_single > 0);
  check "routed PREDICT is non-stale" (contains ~needle:"\"stale\":false" pr_1);
  let code_mo, models_reply = run router_sock [ "MODELS" ] in
  check "MODELS fan-out lists the trained model"
    (code_mo = Some 0 && contains ~needle:"\"name\":\"m\"" models_reply);
  (* Batched PREDICT: the router splits the graph list across the
     group's live members (primary + replica here) and re-concatenates
     the per-member "batch" arrays — the merged reply must be
     byte-identical to the single daemon serving the whole batch in one
     process, and atomic on a failing graph. *)
  let batch_args = [ "--predict"; "m"; "ON"; survivor ^ "," ^ survivor ] in
  let code_b, batch_router = run router_sock batch_args in
  let _, batch_single = run single_sock batch_args in
  check "batched PREDICT through the router exits 0"
    (code_b = Some 0 && contains ~needle:"\"graphs\":2" batch_router);
  check "batched PREDICT byte-identical single vs router"
    (batch_router = batch_single && String.length batch_single > 0);
  let code_bx, batch_cross = run router_sock [ "--predict"; "m"; "ON"; survivor ^ ",a" ] in
  check "mixed-shard batch rejected with the co-hash constraint"
    (code_bx = Some 1
    && contains ~needle:"ERR_BAD_ARG" batch_cross
    && contains ~needle:"one" batch_cross);

  (* RETRAIN-on-stale: mutate the model's source on both sides, then
     wait for the idle loops (every 0.4s) to refit off the request
     path. Every group member refits the same deterministic spec, so
     once refreshed both round-robin targets must answer stale:false
     byte-identically to the refreshed single daemon. *)
  let _, mut_r = run router_sock [ "MUTATE"; survivor; "ADD_EDGES"; "1"; "3" ] in
  let _, mut_s = run single_sock [ "MUTATE"; survivor; "ADD_EDGES"; "1"; "3" ] in
  check "staleness MUTATE applied on both sides"
    (contains ~needle:"\"add_edges\":1" mut_r && contains ~needle:"\"add_edges\":1" mut_s);
  let fresh reply = contains ~needle:"\"stale\":false" reply && contains ~needle:"OK {" reply in
  let rec await_retrain tries =
    let _, p1 = run router_sock predict_args in
    let _, p2 = run router_sock predict_args in
    let _, ps = run single_sock predict_args in
    if fresh p1 && fresh p2 && fresh ps then Some (p1, p2, ps)
    else if tries = 0 then None
    else begin
      ignore (Unix.select [] [] [] 0.4);
      await_retrain (tries - 1)
    end
  in
  (match await_retrain 50 with
  | None -> check "retrain-stale refreshes PREDICT to stale:false" false
  | Some (p1, p2, ps) ->
      check "retrain-stale refreshes PREDICT to stale:false" true;
      check "refreshed PREDICT byte-identical across targets and daemons"
        (p1 = ps && p2 = ps && String.length ps > 0));
  let _, stats_single = run single_sock [ "STATS" ] in
  check "single daemon counts its stale refits"
    (match json_int_field stats_single "retrains_stale" with Some n -> n >= 1 | None -> false);
  (* Cross-shard PREDICT: the model lives on the survivor's shard, but
     graph "a" hashes elsewhere — a worker can only featurize graphs it
     owns, so the router must reject this locally (before member
     selection; shard a's primary is in fact dead) with a structured
     error naming the co-hash constraint, not time out or mis-route. *)
  let code_x, pr_cross = run router_sock [ "--predict"; "m"; "a" ] in
  check "cross-shard PREDICT rejected with the co-hash constraint"
    (code_x = Some 1
    && contains ~needle:"ERR_BAD_ARG" pr_cross
    && contains ~needle:"co-hashed" pr_cross);

  (* Collect the surviving pids, then SIGTERM the router: clean exit,
     front socket unlinked, every child worker reaped. By now several
     0.2s probe intervals have elapsed, so TOPOLOGY must surface live
     health-probe counters for the up members. *)
  let _, topology2 = run router_sock [ "TOPOLOGY" ] in
  check "TOPOLOGY surfaces health-probe counters"
    (contains ~needle:"\"probes_sent\":" topology2 && contains ~needle:"\"pongs\":" topology2);
  let some_member_ponged =
    (* At least one "pongs":N field with N >= 1 somewhere in the reply. *)
    let tag = "\"pongs\":" in
    let tl = String.length tag and n = String.length topology2 in
    let rec scan i =
      if i + tl >= n then false
      else if String.sub topology2 i tl = tag then
        let c = topology2.[i + tl] in
        if c >= '1' && c <= '9' then true else scan (i + 1)
      else scan (i + 1)
    in
    scan 0
  in
  check "some member has answered a probe" some_member_ponged;
  let worker_pids =
    List.filter_map
      (fun shard -> primary_pid topology2 shard)
      [ 0; 1; 2 ]
  in
  Unix.kill router Sys.sigterm;
  let router_code = wait_exit router in
  check "router SIGTERM exits cleanly" (router_code = Some 0);
  check "front socket unlinked" (not (Sys.file_exists router_sock));
  ignore (Unix.select [] [] [] 0.2);
  check "all workers terminated" (List.for_all (fun pid -> not (alive pid)) worker_pids);

  Unix.kill single Sys.sigterm;
  check "reference daemon exits cleanly" (wait_exit single = Some 0);

  Array.iter
    (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (Sys.readdir dir);
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  if !failures > 0 then begin
    Printf.printf "%d router end-to-end check(s) failed\n%!" !failures;
    exit 1
  end;
  print_endline "all router end-to-end checks passed"
