(* End-to-end test of the glqld daemon and glql_client, driven through
   real processes and a real Unix-domain socket:

     test_e2e_server <glqld.exe> <glql_client.exe>

   Starts the daemon, registers a graph, runs the same GEL query from two
   CONCURRENT client processes, and asserts: both replies are identical
   and match direct Glql_gel evaluation, STATS shows a plan-cache hit
   (the second of the two concurrent identical queries), and SIGTERM
   produces a clean exit with a metrics dump. *)

module Expr = Glql_gel.Expr
module Parser = Glql_gel.Parser
module Registry = Glql_server.Registry
module Graph = Glql_graph.Graph
module P = Glql_server.Protocol

let failures = ref 0

let check name ok =
  if ok then Printf.printf "ok - %s\n%!" name
  else begin
    incr failures;
    Printf.printf "FAIL - %s\n%!" name
  end

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* First integer following "<field>": in a one-line JSON dump. *)
let json_int_field text field =
  let tag = "\"" ^ field ^ "\":" in
  let tl = String.length tag and n = String.length text in
  let rec find i = if i + tl > n then None else if String.sub text i tl = tag then Some (i + tl) else find (i + 1) in
  match find 0 with
  | None -> None
  | Some start ->
      let stop = ref start in
      while !stop < n && (text.[!stop] = '-' || (text.[!stop] >= '0' && text.[!stop] <= '9')) do
        incr stop
      done;
      int_of_string_opt (String.sub text start (!stop - start))

let spawn exe args ~stdout_file =
  let out_fd =
    Unix.openfile stdout_file [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o600
  in
  let pid = Unix.create_process exe (Array.of_list (exe :: args)) Unix.stdin out_fd Unix.stderr in
  Unix.close out_fd;
  pid

let wait_exit pid =
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED code -> Some code
  | _, (Unix.WSIGNALED _ | Unix.WSTOPPED _) -> None

let () =
  let glqld, client =
    match Sys.argv with
    | [| _; d; c |] -> (d, c)
    | _ ->
        prerr_endline "usage: test_e2e_server <glqld.exe> <glql_client.exe>";
        exit 2
  in
  let dir = Filename.temp_file "glqld_e2e" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let sock = Filename.concat dir "glqld.sock" in
  let metrics_file = Filename.concat dir "metrics.json" in
  let snapshot_file = Filename.concat dir "glqld.glqs" in
  let out i = Filename.concat dir (Printf.sprintf "out%d.txt" i) in

  let wait_for_socket () =
    let deadline = Unix.gettimeofday () +. 15.0 in
    while (not (Sys.file_exists sock)) && Unix.gettimeofday () < deadline do
      ignore (Unix.select [] [] [] 0.05)
    done
  in

  (* Start the daemon and wait for its socket to appear. *)
  let daemon =
    spawn glqld
      [ "--socket"; sock; "--metrics-file"; metrics_file; "--snapshot"; snapshot_file ]
      ~stdout_file:(Filename.concat dir "daemon.out")
  in
  wait_for_socket ();
  check "daemon socket appears" (Sys.file_exists sock);

  let run_client ?(n = 0) args =
    let pid = spawn client ([ "--socket"; sock ] @ args) ~stdout_file:(out n) in
    let code = wait_exit pid in
    (code, read_file (out n))
  in

  (* Register a graph. *)
  let code, reply = run_client [ "LOAD"; "g"; "petersen" ] in
  check "LOAD exits 0" (code = Some 0);
  check "LOAD reply ok" (contains ~needle:"\"vertices\":10" reply);

  (* The same query from two concurrent client processes. *)
  let src = "agg_sum{x2}([1] | E(x1,x2))" in
  let query_args = [ "QUERY"; "g"; src ] in
  let pid1 = spawn client ([ "--socket"; sock ] @ query_args) ~stdout_file:(out 1) in
  let pid2 = spawn client ([ "--socket"; sock ] @ query_args) ~stdout_file:(out 2) in
  let code1 = wait_exit pid1 and code2 = wait_exit pid2 in
  check "concurrent client 1 exits 0" (code1 = Some 0);
  check "concurrent client 2 exits 0" (code2 = Some 0);
  let reply1 = read_file (out 1) and reply2 = read_file (out 2) in
  (* The cache tag legitimately differs between the two (one miss, one
     hit); everything else — in particular the values — must be equal. *)
  let normalize s =
    let needle = "\"plan_cache\":\"hit\"" and repl = "\"plan_cache\":\"miss\"" in
    let nl = String.length needle and sl = String.length s in
    let buf = Buffer.create sl in
    let i = ref 0 in
    while !i < sl do
      if !i + nl <= sl && String.sub s !i nl = needle then begin
        Buffer.add_string buf repl;
        i := !i + nl
      end
      else begin
        Buffer.add_char buf s.[!i];
        incr i
      end
    done;
    Buffer.contents buf
  in
  check "concurrent replies identical" (normalize reply1 = normalize reply2 && String.length reply1 > 0);
  check "one of the two concurrent queries hit the plan cache"
    (contains ~needle:"\"plan_cache\":\"hit\"" (reply1 ^ reply2)
    && contains ~needle:"\"plan_cache\":\"miss\"" (reply1 ^ reply2));

  (* Replies match direct in-process Glql_gel evaluation. *)
  let g = match Registry.graph_of_spec "petersen" with Ok g -> g | Error e -> failwith e in
  let table = Expr.eval g (Parser.parse src) in
  let expected =
    P.json_to_string
      (P.List
         (Array.to_list
            (Array.map
               (fun v -> P.List (Array.to_list (Array.map (fun x -> P.Float x) v)))
               table.Expr.tdata)))
  in
  check "replies match direct evaluation" (contains ~needle:("\"values\":" ^ expected) reply1);

  (* The second identical query must have been a plan-cache hit. *)
  let _, stats = run_client ~n:3 [ "STATS" ] in
  check "STATS replies ok" (P.is_ok (String.trim stats));
  check "plan cache saw a hit"
    (match json_int_field stats "plan_hits" with Some h -> h >= 1 | None -> false);
  check "exactly one plan compiled"
    (match json_int_field stats "plan_misses" with Some m -> m = 1 | None -> false);

  (* EXPLAIN over the wire: the warm-cache query reports every canonical
     stage, cache-hit attribution, and stage timings that sum to the
     reported total. *)
  let _, explain = run_client ~n:4 [ "EXPLAIN"; "g"; src ] in
  check "EXPLAIN replies ok" (P.is_ok (String.trim explain));
  List.iter
    (fun stage ->
      check
        (Printf.sprintf "EXPLAIN reports stage %s" stage)
        (contains ~needle:(Printf.sprintf "\"stage\":\"%s\"" stage) explain))
    [ "parse"; "normalize"; "cache_lookup"; "compile"; "execute"; "materialize" ];
  check "EXPLAIN attributes the plan-cache hit"
    (contains ~needle:"\"plan_cache\":\"hit\"" explain && contains ~needle:"\"cached\":true" explain);
  (let float_after key s =
     let tag = "\"" ^ key ^ "\":" in
     let tl = String.length tag and n = String.length s in
     let rec find i =
       if i + tl > n then None else if String.sub s i tl = tag then Some (i + tl) else find (i + 1)
     in
     match find 0 with
     | None -> None
     | Some start ->
         let stop = ref start in
         let is_num c =
           (c >= '0' && c <= '9') || c = '.' || c = '-' || c = '+' || c = 'e' || c = 'E'
         in
         while !stop < n && is_num s.[!stop] do incr stop done;
         float_of_string_opt (String.sub s start (!stop - start))
   in
   let rec stage_ms acc s =
     match float_after "ms" s with
     | None -> List.rev acc
     | Some f -> (
         match String.index_opt s '}' with
         | None -> List.rev (f :: acc)
         | Some j -> stage_ms (f :: acc) (String.sub s (j + 1) (String.length s - j - 1)))
   in
   (* Scan stage objects one '{...}' at a time so "total_ms" is skipped. *)
   match (float_after "total_ms" explain, String.index_opt explain '[') with
   | Some total, Some open_bracket ->
       let stages_part =
         String.sub explain open_bracket (String.length explain - open_bracket)
       in
       let ms = stage_ms [] stages_part in
       let sum = List.fold_left ( +. ) 0.0 ms in
       check "EXPLAIN has a stage breakdown" (List.length ms >= 6);
       check
         (Printf.sprintf "EXPLAIN stage timings (%g ms) sum to total (%g ms)" sum total)
         (Float.abs (sum -. total) < 1e-6)
   | _ -> check "EXPLAIN carries total_ms and stage timings" false);

  (* TRACE option over the wire: the reply carries the span list. *)
  let _, traced = run_client ~n:5 [ "QUERY"; "g"; src; "TRACE" ] in
  check "TRACE reply ok" (P.is_ok (String.trim traced));
  check "TRACE reply carries spans"
    (contains ~needle:"\"trace\":[" traced && contains ~needle:"\"name\":\"request\"" traced);

  (* A server-side error makes the client exit nonzero, with the ERR
     reply on stdout. *)
  let err_code, err_reply = run_client ~n:6 [ "QUERY"; "nosuchgraph"; src ] in
  check "client exits nonzero on ERR reply" (err_code = Some 1);
  check "ERR reply printed"
    (String.length err_reply >= 3 && String.sub (String.trim err_reply) 0 3 = "ERR");

  (* Colour the graph so the snapshot carries a colouring too. *)
  let _, wl_warm = run_client ~n:7 [ "WL"; "g" ] in
  check "WL replies ok" (P.is_ok (String.trim wl_warm));
  let signature_of reply =
    let key = "\"signature\":\"" in
    let kl = String.length key and n = String.length reply in
    let rec find i =
      if i + kl > n then ""
      else if String.sub reply i kl = key then (
        match String.index_from_opt reply (i + kl) '"' with
        | Some stop -> String.sub reply (i + kl) (stop - i - kl)
        | None -> "")
      else find (i + 1)
    in
    find 0
  in

  (* Protocol v6 over the wire: HELLO advertises it, read-path replies
     stay byte-compatible with v4 (no new fields leak into them). *)
  let _, hello = run_client ~n:11 [ "HELLO" ] in
  check "HELLO reports protocol v6" (contains ~needle:"\"protocol_version\":6" hello);
  check "read replies carry no v5 mutation fields"
    ((not (contains ~needle:"generation" reply1))
    && (not (contains ~needle:"generation" wl_warm))
    && not (contains ~needle:"applied" reply1));

  (* MUTATE through glql_client --mutate: one atomic batch from the
     request words, applied before the snapshot so the post-mutation
     state is what persists. *)
  let _, _ = run_client ~n:12 [ "LOAD"; "m"; "cycle9" ] in
  let mut_code, mut_reply =
    run_client ~n:13 [ "--mutate"; "m"; "ADD_EDGES"; "0"; "2"; "SET_LABEL"; "0"; "5.0" ]
  in
  check "--mutate exits 0" (mut_code = Some 0);
  let gen1 = json_int_field mut_reply "generation" in
  check "--mutate reports a generation" (gen1 <> None);
  check "--mutate reports applied counts"
    (contains ~needle:"\"applied\":{\"add_edges\":1,\"del_edges\":0,\"set_labels\":1}" mut_reply);
  (* Replaying the same edge add is rejected per-op, not per-batch: the
     SET_LABEL half still applies, so the generation advances again. *)
  let _, mut2 =
    run_client ~n:14 [ "--mutate"; "m"; "ADD_EDGES"; "0"; "2"; "SET_LABEL"; "0"; "5.0" ]
  in
  check "duplicate edge add rejected with a v4 code"
    (contains ~needle:"\"code\":\"ERR_BAD_ARG\"" mut2
    && contains ~needle:"\"applied\":{\"add_edges\":0,\"del_edges\":0,\"set_labels\":1}" mut2);
  check "partially applied batch still advances the generation"
    (match (gen1, json_int_field mut2 "generation") with
    | Some a, Some b -> b > a
    | _ -> false);
  (* Reads on the mutated graph see the chord. *)
  let gm = match Registry.graph_of_spec "cycle9" with Ok g -> g | Error e -> failwith e in
  let gm' =
    Graph.mutate gm ~add_edges:[ (0, 2) ] ~del_edges:[] ~set_labels:[ (0, [| 5.0 |]) ]
  in
  let m_expected =
    let table = Expr.eval gm' (Parser.parse src) in
    P.json_to_string
      (P.List
         (Array.to_list
            (Array.map
               (fun v -> P.List (Array.to_list (Array.map (fun x -> P.Float x) v)))
               table.Expr.tdata)))
  in
  let _, m_reply = run_client ~n:15 [ "QUERY"; "m"; src ] in
  check "post-mutate query sees the chord"
    (contains ~needle:("\"values\":" ^ m_expected) m_reply);

  (* Model serving (protocol v6): FEATURIZE via the --featurize flag,
     TRAIN via --train, PREDICT via --predict. The recipe avoids wl
     one-hot so its widths are stable across the later mutation and
     staleness (not ERR_SCHEMA_MISMATCH) is what the final check sees. *)
  let recipe = "deg;hom3;label" in
  let feat_code, feat = run_client ~n:17 [ "--featurize"; "g"; recipe ] in
  check "--featurize exits 0" (feat_code = Some 0);
  check "FEATURIZE reports the matrix shape"
    (contains ~needle:"\"rows\":10" feat
    && contains ~needle:"\"cols\":5" feat
    && contains ~needle:"\"digest\":\"" feat);
  let train_code, train_reply =
    run_client ~n:18 [ "--train"; "clf"; "ON"; "g"; "WITH"; recipe; "TARGET"; src; "EPOCHS"; "20" ]
  in
  check "--train exits 0" (train_code = Some 0);
  check "TRAIN reports losses and metrics"
    (contains ~needle:"\"loss_final\":" train_reply
    && contains ~needle:"\"train_metric\":" train_reply
    && contains ~needle:"\"schema_hash\":\"" train_reply);
  let _, models_reply = run_client ~n:19 [ "MODELS" ] in
  check "MODELS lists the trained model" (contains ~needle:"\"name\":\"clf\"" models_reply);
  let pred_code, pred1 = run_client ~n:20 [ "--predict"; "clf"; "g"; "0"; "1"; "2" ] in
  check "--predict exits 0" (pred_code = Some 0);
  check "PREDICT is not stale on the source generation" (contains ~needle:"\"stale\":false" pred1);
  check "PREDICT of an unknown model is classified"
    (let _, r = run_client ~n:21 [ "PREDICT"; "nosuch"; "g" ] in
     contains ~needle:"ERR_UNKNOWN_MODEL" r);
  check "FEATURIZE with a bad recipe is classified"
    (let _, r = run_client ~n:22 [ "FEATURIZE"; "g"; "deg;bogus7" ] in
     contains ~needle:"ERR_BAD_RECIPE" r);

  (* SIGTERM: clean exit, socket unlinked, metrics dumped, snapshot
     written (the daemon was started with --snapshot). *)
  Unix.kill daemon Sys.sigterm;
  let daemon_code = wait_exit daemon in
  check "SIGTERM exits cleanly" (daemon_code = Some 0);
  check "socket unlinked on shutdown" (not (Sys.file_exists sock));
  check "metrics file written" (Sys.file_exists metrics_file);
  let metrics = if Sys.file_exists metrics_file then read_file metrics_file else "" in
  check "metrics count the requests"
    (match json_int_field metrics "requests" with Some r -> r >= 4 | None -> false);
  check "metrics include cache stats" (contains ~needle:"\"plan_hits\"" metrics);
  check "snapshot written on shutdown" (Sys.file_exists snapshot_file);

  (* Warm restart: a new daemon restoring the snapshot must answer the
     same query from its plan cache and the same WL request from its
     colouring cache, with identical results and no recomputation. *)
  let metrics_file2 = Filename.concat dir "metrics2.json" in
  let daemon2 =
    spawn glqld
      [ "--socket"; sock; "--metrics-file"; metrics_file2; "--snapshot"; snapshot_file ]
      ~stdout_file:(Filename.concat dir "daemon2.out")
  in
  wait_for_socket ();
  check "restarted daemon socket appears" (Sys.file_exists sock);
  let warm_code, warm_reply = run_client ~n:8 [ "QUERY"; "g"; src ] in
  check "restored graph answers without a LOAD" (warm_code = Some 0);
  check "restored query is a plan-cache hit" (contains ~needle:"\"plan_cache\":\"hit\"" warm_reply);
  check "restored query values match the first life"
    (contains ~needle:("\"values\":" ^ expected) warm_reply);
  let _, wl_restored = run_client ~n:9 [ "WL"; "g" ] in
  check "restored WL is a coloring-cache hit"
    (contains ~needle:"\"coloring_cache\":\"hit\"" wl_restored);
  check "restored WL signature identical"
    (signature_of wl_warm <> "" && signature_of wl_warm = signature_of wl_restored);
  let _, stats2 = run_client ~n:10 [ "STATS" ] in
  check "restarted STATS reports the restored section"
    (contains ~needle:"\"restored\":{" stats2 && contains ~needle:snapshot_file stats2);
  check "restarted STATS counts the restored graph"
    (match json_int_field stats2 "graphs_registered" with Some g -> g >= 1 | None -> false);
  (* The snapshot carried the post-mutation state of m: the restored
     graph still has the chord and the relabelled vertex. *)
  let _, m_restored = run_client ~n:16 [ "QUERY"; "m"; src ] in
  check "restored mutated graph keeps the chord"
    (contains ~needle:("\"values\":" ^ m_expected) m_restored);
  (* The snapshot carried the model registry: the rebooted daemon
     answers PREDICT warm and byte-identically, and a MUTATE of the
     source graph flips the reply to stale (same schema, new
     generation). *)
  let _, pred2 = run_client ~n:23 [ "--predict"; "clf"; "g"; "0"; "1"; "2" ] in
  check "restored PREDICT is byte-identical" (pred1 = pred2 && String.length pred2 > 0);
  check "restarted STATS counts the restored model"
    (match json_int_field stats2 "models_registered" with Some m -> m >= 1 | None -> false);
  let _, _ = run_client ~n:24 [ "--mutate"; "g"; "ADD_EDGES"; "0"; "2" ] in
  let _, pred3 = run_client ~n:25 [ "PREDICT"; "clf"; "g"; "0" ] in
  check "post-mutate PREDICT reports stale" (contains ~needle:"\"stale\":true" pred3);
  Unix.kill daemon2 Sys.sigterm;
  check "restarted daemon exits cleanly" (wait_exit daemon2 = Some 0);

  (* Tidy up the scratch directory. *)
  Array.iter (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ()) (Sys.readdir dir);
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  if !failures > 0 then begin
    Printf.printf "%d end-to-end check(s) failed\n%!" !failures;
    exit 1
  end;
  print_endline "all end-to-end checks passed"
