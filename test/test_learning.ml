(* Tests for glql_learning: datasets and ERM trainers. *)

open Helpers
module Rng = Glql_util.Rng
module Graph = Glql_graph.Graph
module Generators = Glql_graph.Generators
module Gml = Glql_logic.Gml
module Dataset = Glql_learning.Dataset
module Erm = Glql_learning.Erm
module Model = Glql_gnn.Model
module Mlp = Glql_nn.Mlp
module Activation = Glql_nn.Activation

let test_molecules_dataset () =
  let ds = Dataset.molecules (Rng.create 1) ~n_graphs:20 ~n_atoms:8 ~n_atom_types:3 in
  check_int "count" 20 (Array.length ds.Dataset.graphs);
  check_int "labels count" 20 (Array.length ds.Dataset.gc_labels);
  check_int "in_dim" 3 ds.Dataset.gc_in_dim;
  Array.iter (fun g -> check_int "label dim" 3 (Graph.label_dim g)) ds.Dataset.graphs;
  (* Labels are exactly the GML activity property. *)
  Array.iteri
    (fun i g ->
      let active = Array.exists (fun b -> b) (Gml.eval Dataset.activity_property g) in
      check_int "label consistent" (if active then 1 else 0) ds.Dataset.gc_labels.(i))
    ds.Dataset.graphs

let test_datasets_deterministic () =
  let a = Dataset.molecules (Rng.create 9) ~n_graphs:5 ~n_atoms:8 ~n_atom_types:3 in
  let b = Dataset.molecules (Rng.create 9) ~n_graphs:5 ~n_atoms:8 ~n_atom_types:3 in
  check_bool "same labels" true (a.Dataset.gc_labels = b.Dataset.gc_labels);
  check_bool "same structures" true
    (Array.for_all2 Graph.equal_structure a.Dataset.graphs b.Dataset.graphs)

let test_citation_dataset () =
  let ds =
    Dataset.citation (Rng.create 2) ~n_per_class:10 ~n_classes:3 ~feature_noise:0.2
      ~train_fraction:0.3
  in
  check_int "n vertices" 30 (Graph.n_vertices ds.Dataset.graph);
  check_int "in dim" ds.Dataset.nc_in_dim (Graph.label_dim ds.Dataset.graph);
  check_int "labels" 30 (Array.length ds.Dataset.nc_labels);
  check_bool "labels in range" true
    (Array.for_all (fun l -> l >= 0 && l < 3) ds.Dataset.nc_labels)

let test_links_dataset () =
  let ds = Dataset.links (Rng.create 3) ~n_per_class:8 ~n_classes:2 ~n_pairs:40 ~train_fraction:0.5 in
  check_int "pairs" 40 (Array.length ds.Dataset.pairs);
  Array.iter (fun (u, v) -> check_bool "no self pairs" false (u = v)) ds.Dataset.pairs;
  check_bool "targets binary" true
    (Array.for_all (fun t -> t = 0.0 || t = 1.0) ds.Dataset.lp_targets)

let test_regression_targets () =
  check_float "two-walks of star3" (9.0 +. 3.0) (Dataset.two_walk_count (unlabel (Generators.star 3)));
  check_float "triangles K4" 4.0 (Dataset.triangle_count (Generators.complete 4))

let test_regular_generator_cr_homogeneous () =
  let g1 = Dataset.regular_generator ~n:10 ~d:3 (Rng.create 4) in
  let g2 = Dataset.regular_generator ~n:10 ~d:3 (Rng.create 5) in
  check_bool "CR-equivalent corpus" true
    (Glql_wl.Color_refinement.equivalent_graphs (unlabel g1) (unlabel g2))

let test_split () =
  let train, test = Erm.split (Rng.create 6) ~n:10 ~train_fraction:0.7 in
  check_int "train size" 7 (List.length train);
  check_int "test size" 3 (List.length test);
  let all = List.sort compare (train @ test) in
  Alcotest.(check (list int)) "partition of indices" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] all

let losses_decrease history =
  match (history.Erm.losses, List.rev history.Erm.losses) with
  | first :: _, last :: _ -> last < first
  | _ -> false

let test_train_graph_classifier () =
  let rng = Rng.create 7 in
  let ds = Dataset.molecules rng ~n_graphs:24 ~n_atoms:8 ~n_atom_types:3 in
  let train, test = Erm.split rng ~n:24 ~train_fraction:0.75 in
  let model = Model.gin_classifier rng ~in_dim:3 ~width:8 ~depth:2 ~n_classes:2 in
  let h = Erm.train_graph_classifier ~epochs:40 ~lr:0.02 model ds ~train_indices:train ~test_indices:test in
  check_bool "loss decreases" true (losses_decrease h);
  check_bool "fits training data" true (h.Erm.train_metric >= 0.75)

let test_train_node_classifier () =
  let rng = Rng.create 8 in
  let ds = Dataset.citation rng ~n_per_class:12 ~n_classes:2 ~feature_noise:0.2 ~train_fraction:0.4 in
  let model = Model.gcn_node_classifier rng ~in_dim:ds.Dataset.nc_in_dim ~width:8 ~depth:2 ~n_classes:2 in
  let h = Erm.train_node_classifier ~epochs:80 ~lr:0.05 model ds in
  check_bool "loss decreases" true (losses_decrease h);
  check_bool "beats chance on train" true (h.Erm.train_metric > 0.6)

let test_train_feature_classifier () =
  (* Linearly separable toy features. *)
  let rng = Rng.create 9 in
  let n = 60 in
  let features = Array.init n (fun i -> [| (if i mod 2 = 0 then 1.0 else -1.0); Rng.float rng |]) in
  let targets = Array.init n (fun i -> if i mod 2 = 0 then 1.0 else 0.0) in
  let mask = Array.init n (fun i -> i < 40) in
  let head = Mlp.create rng ~sizes:[ 2; 4; 1 ] ~act:Activation.Tanh ~out_act:Activation.Identity in
  let h = Erm.train_feature_classifier ~epochs:150 ~lr:0.05 head ~features ~targets ~mask in
  check_bool "train acc" true (h.Erm.train_metric >= 0.95);
  check_bool "test acc" true (h.Erm.test_metric >= 0.95)

let test_feature_trainers_honour_deadline () =
  (* The feature trainers check the request deadline once per epoch, so
     a server TRAIN that times out aborts the fit instead of blocking
     the worker for up to 10k epochs. An already-passed deadline must
     raise on the very first epoch. *)
  let rng = Rng.create 12 in
  let n = 8 in
  let features = Array.init n (fun i -> [| float_of_int i |]) in
  let targets = Array.init n (fun i -> if i mod 2 = 0 then 1.0 else 0.0) in
  let mask = Array.make n true in
  let passed = Some (Int64.sub (Glql_util.Clock.now_ns ()) 1L) in
  let head = Mlp.create rng ~sizes:[ 1; 1 ] ~act:Activation.Tanh ~out_act:Activation.Identity in
  Alcotest.check_raises "classifier aborts" Glql_util.Clock.Deadline_exceeded (fun () ->
      ignore
        (Erm.train_feature_classifier ~epochs:5 ~deadline:passed head ~features ~targets ~mask));
  Alcotest.check_raises "regressor aborts" Glql_util.Clock.Deadline_exceeded (fun () ->
      ignore
        (Erm.train_feature_regressor ~epochs:5 ~deadline:passed head ~features ~targets ~mask))

let test_train_link_predictor () =
  let rng = Rng.create 10 in
  let ds = Dataset.links rng ~n_per_class:8 ~n_classes:2 ~n_pairs:60 ~train_fraction:0.7 in
  (* Give the encoder one-hot-degree-ish random labels so embeddings can
     differ; here we mainly check the training loop plumbing runs and the
     loss decreases. *)
  let model =
    Model.create
      [ Glql_gnn.Layer.gnn101 rng ~din:1 ~dout:6 ~act:Activation.Tanh ]
  in
  let head = Mlp.create rng ~sizes:[ 6; 4; 1 ] ~act:Activation.Tanh ~out_act:Activation.Identity in
  let h = Erm.train_link_predictor ~epochs:30 ~lr:0.02 model head ds in
  check_int "loss per epoch" 30 (List.length h.Erm.losses);
  check_bool "loss finite" true (List.for_all Float.is_finite h.Erm.losses)

let test_train_graph_regressor () =
  let rng = Rng.create 11 in
  let ds =
    Dataset.regression_corpus rng ~n_graphs:16 ~generator:(Dataset.er_generator ~n:6)
      ~target:(fun g -> float_of_int (Graph.n_edges g) /. 10.0)
      ~target_name:"edge count"
  in
  let model =
    Model.create ~readout:Model.RSum
      ~head:(Mlp.create rng ~sizes:[ 6; 1 ] ~act:Activation.Identity ~out_act:Activation.Identity)
      [ Glql_gnn.Layer.gnn101 rng ~din:1 ~dout:6 ~act:Activation.Tanh ]
  in
  let train, test = Erm.split rng ~n:16 ~train_fraction:0.75 in
  let h = Erm.train_graph_regressor ~epochs:150 ~lr:0.01 model ds ~train_indices:train ~test_indices:test in
  check_bool "loss decreases" true (losses_decrease h);
  (* Edge count is a sum-readout-visible quantity: should fit well. *)
  check_bool "low train mse" true (h.Erm.train_metric < 0.05)

let suite =
  ( "learning",
    [
      case "molecules dataset" test_molecules_dataset;
      case "datasets deterministic" test_datasets_deterministic;
      case "citation dataset" test_citation_dataset;
      case "links dataset" test_links_dataset;
      case "regression targets" test_regression_targets;
      case "regular corpus CR-homogeneous" test_regular_generator_cr_homogeneous;
      case "split" test_split;
      case "train graph classifier" test_train_graph_classifier;
      case "train node classifier" test_train_node_classifier;
      case "train feature classifier" test_train_feature_classifier;
      case "feature trainers honour the deadline" test_feature_trainers_honour_deadline;
      case "train link predictor" test_train_link_predictor;
      case "train graph regressor" test_train_graph_regressor;
    ] )
