(* Test entry point: one alcotest suite per library. *)

let () =
  Alcotest.run "glql"
    [
      Test_util.suite;
      Test_tensor.suite;
      Test_graph.suite;
      Test_wl.suite;
      Test_hom.suite;
      Test_logic.suite;
      Test_nn.suite;
      Test_gnn.suite;
      Test_gel.suite;
      Test_learning.suite;
      Test_core.suite;
      Test_subgraph.suite;
      Test_relational.suite;
      Test_properties.suite;
      Test_parser.suite;
      Test_server.suite;
      Test_router.suite;
      Test_store.suite;
      Test_trace.suite;
    ]
