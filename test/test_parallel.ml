(* Determinism tests for the multicore execution layer.

   This suite is its own executable, run twice by dune (GLQL_DOMAINS=1 and
   GLQL_DOMAINS=4, see test/dune), so both the sequential fallback and a
   genuinely parallel pool are exercised on every `dune runtest`.  Each
   test compares a kernel under the ambient pool size against the same
   kernel forced through [Pool.sequential]; since the reference never
   depends on the pool, passing under both sizes proves size-1 and size-4
   outputs are identical — colours and counts exactly, floats bit for
   bit. *)

module Pool = Glql_util.Pool
module Rng = Glql_util.Rng
module Mat = Glql_tensor.Mat
module Generators = Glql_graph.Generators
module Cr = Glql_wl.Color_refinement
module Tree = Glql_hom.Tree
module Count = Glql_hom.Count
module Propagate = Glql_gnn.Propagate
module Model = Glql_gnn.Model
module Dataset = Glql_learning.Dataset
module Erm = Glql_learning.Erm

let case name f = Alcotest.test_case name `Quick f

let qtest ?(count = 30) name arbitrary prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arbitrary prop)

let seed_arb = QCheck.(int_bound 1_000_000)

let random_graph seed ~n ~p = Generators.erdos_renyi (Rng.create seed) ~n ~p

let random_mat seed rows cols =
  let rng = Rng.create seed in
  Mat.init rows cols (fun _ _ -> Rng.gaussian rng)

(* Exact float matrix equality (zero tolerance). *)
let mat_eq a b =
  Mat.rows a = Mat.rows b
  && Mat.cols a = Mat.cols b
  &&
  let ok = ref true in
  for i = 0 to Mat.rows a - 1 do
    for j = 0 to Mat.cols a - 1 do
      if not (Float.equal (Mat.get a i j) (Mat.get b i j)) then ok := false
    done
  done;
  !ok

let float_array_eq a b = Array.length a = Array.length b && Array.for_all2 Float.equal a b

(* --- pool combinators --------------------------------------------------- *)

let test_size_env () =
  match Sys.getenv_opt "GLQL_DOMAINS" with
  | Some s -> Alcotest.(check int) "size honours GLQL_DOMAINS" (int_of_string s) (Pool.size ())
  | None -> ()

let test_parallel_for () =
  let n = 1000 in
  let par = Array.make n 0 and seq = Array.make n 0 in
  Pool.parallel_for ~n (fun i -> par.(i) <- (i * i) + 1);
  for i = 0 to n - 1 do
    seq.(i) <- (i * i) + 1
  done;
  Alcotest.(check bool) "parallel_for fills every slot" true (par = seq)

let test_parallel_map () =
  let a = Array.init 257 (fun i -> i - 100) in
  Alcotest.(check bool)
    "map matches Array.map" true
    (Pool.parallel_map_array (fun x -> (x * 7) mod 13) a = Array.map (fun x -> (x * 7) mod 13) a)

let test_reduce_order () =
  (* An order-sensitive float combine: only index-order reduction gives
     the sequential fold's bits. *)
  let n = 500 in
  let map i = Float.of_int (i + 1) /. 3.0 in
  let combine acc x = (acc *. 0.75) +. x in
  let par = Pool.parallel_reduce ~n ~init:1.0 ~map ~combine in
  let seq = ref 1.0 in
  for i = 0 to n - 1 do
    seq := combine !seq (map i)
  done;
  Alcotest.(check bool) "reduce combines in index order" true (Float.equal par !seq)

exception Boom

let test_exception () =
  let raised =
    try
      Pool.parallel_for ~n:64 (fun i -> if i = 37 then raise Boom);
      false
    with Boom -> true
  in
  Alcotest.(check bool) "exceptions propagate to the caller" true raised

let test_nested () =
  let n = 16 in
  let out = Array.make_matrix n n 0 in
  Pool.parallel_for ~n (fun i ->
      Pool.parallel_for ~n (fun j -> out.(i).(j) <- (i * n) + j));
  let expect = Array.init n (fun i -> Array.init n (fun j -> (i * n) + j)) in
  Alcotest.(check bool) "nested regions degrade but compute" true (out = expect)

let test_sequential_restores () =
  let inside = Pool.sequential (fun () -> 41 + 1) in
  Alcotest.(check int) "sequential returns the thunk's value" 42 inside;
  (* After [sequential], parallel regions must work again. *)
  test_parallel_for ()

(* --- WL joint refinement ------------------------------------------------- *)

let prop_run_joint_deterministic =
  qtest "run_joint: pool == sequential (colors, rounds)" seed_arb (fun seed ->
      let corpus =
        List.init 4 (fun i ->
            random_graph (seed + (31 * i)) ~n:(6 + ((seed + i) mod 9)) ~p:0.3)
      in
      let par = Cr.run_joint corpus in
      let seq = Pool.sequential (fun () -> Cr.run_joint corpus) in
      Cr.stable_colors par = Cr.stable_colors seq
      && Cr.rounds par = Cr.rounds seq
      && Cr.history par = Cr.history seq)

let prop_graph_partition_deterministic =
  qtest "graph_partition: pool == sequential" seed_arb (fun seed ->
      let corpus = List.init 6 (fun i -> random_graph (seed + (7 * i)) ~n:8 ~p:0.35) in
      let par = Cr.graph_partition corpus in
      let seq = Pool.sequential (fun () -> Cr.graph_partition corpus) in
      par = seq)

(* One random mutation batch: returns the mutated graph plus the touched
   vertex lists a server-side MUTATE would report (endpoints of every
   edge op — a superset of the vertices whose adjacency actually changed
   is allowed). *)
let random_mutation_batch rng g =
  let n = Glql_graph.Graph.n_vertices g in
  let module G = Glql_graph.Graph in
  let n_ops = 1 + Rng.int rng 6 in
  let adds = ref [] and dels = ref [] and labs = ref [] in
  let t_adj = ref [] and t_lab = ref [] in
  let existing = Array.of_list (G.edges g) in
  for _ = 1 to n_ops do
    match Rng.int rng 3 with
    | 0 ->
        let u = Rng.int rng n and v = Rng.int rng n in
        if u <> v then begin
          adds := (u, v) :: !adds;
          t_adj := u :: v :: !t_adj
        end
    | 1 ->
        if Array.length existing > 0 then begin
          let u, v = Rng.pick rng existing in
          dels := (u, v) :: !dels;
          t_adj := u :: v :: !t_adj
        end
    | _ ->
        let v = Rng.int rng n in
        let value = float_of_int (1 + Rng.int rng 3) in
        labs := (v, [| value |]) :: !labs;
        t_lab := v :: !t_lab
  done;
  let g' = G.mutate g ~add_edges:!adds ~del_edges:!dels ~set_labels:!labs in
  (g', !t_adj, !t_lab)

(* The tentpole property: (mutate batch -> incremental recolor) is
   bit-identical to (rebuild graph -> full refinement) — same colour
   ids, same history, same round count — across chained random
   ADD/DEL/SET_LABEL batches, with each batch seeding the next from the
   previous incremental result.  [frontier_limit:1.0] pins the
   incremental path on (no silent fallback), and runs under both
   GLQL_DOMAINS=1 and 4 via this executable's two runtest invocations. *)
let prop_incremental_recolor_bit_identical =
  qtest ~count:60 "run_incremental == full run (chained mutation batches)" seed_arb
    (fun seed ->
      let rng = Rng.create (seed + 11) in
      let n = 64 + Rng.int rng 65 in
      (* Mix sparse random graphs with homogeneous structured ones:
         cycles and grids stress the class-split paths of the image
         matcher (a mutation on a vertex-transitive graph cracks one
         giant class), random graphs the near-discrete paths. *)
      let g0 =
        match seed mod 3 with
        | 0 -> Generators.cycle n
        | 1 -> Generators.grid 8 (max 8 (n / 8))
        | _ -> random_graph (seed + 1) ~n ~p:0.06
      in
      let base = ref (Cr.run g0) in
      let g = ref g0 in
      let ok = ref true in
      for _batch = 1 to 3 do
        let g', t_adj, t_lab = random_mutation_batch rng !g in
        let full = Cr.run g' in
        let inc, was_incremental =
          Cr.run_incremental ~frontier_limit:1.0 ~base:!base ~touched_adj:t_adj
            ~touched_lab:t_lab g'
        in
        ok :=
          !ok && was_incremental
          && Cr.rounds inc = Cr.rounds full
          && Cr.history inc = Cr.history full
          && Cr.stable_colors inc = Cr.stable_colors full;
        base := inc;
        g := g'
      done;
      !ok)

(* --- hom-count profiles --------------------------------------------------- *)

let trees6 = Tree.all_free_trees_up_to 6

let prop_hom_profile_deterministic =
  qtest "Count.profile: pool == sequential (bit-equal floats)" seed_arb (fun seed ->
      let g = random_graph seed ~n:(5 + (seed mod 8)) ~p:0.4 in
      let par = Count.profile trees6 g in
      let seq = Pool.sequential (fun () -> Count.profile trees6 g) in
      float_array_eq par seq)

let prop_equal_profiles_deterministic =
  qtest "Count.equal_profiles: pool == sequential" seed_arb (fun seed ->
      let g = random_graph seed ~n:8 ~p:0.4 in
      let h = random_graph (seed + 1) ~n:8 ~p:0.4 in
      let par = Count.equal_profiles trees6 g h in
      let seq = Pool.sequential (fun () -> Count.equal_profiles trees6 g h) in
      par = seq)

(* --- matrix kernels ------------------------------------------------------- *)

let prop_mul_deterministic =
  (* 65*40*50 = 130k multiply-adds: well above the parallel threshold. *)
  qtest "Mat.mul: pool == sequential (bit-equal)" seed_arb (fun seed ->
      let a = random_mat seed 65 40 and b = random_mat (seed + 1) 40 50 in
      let par = Mat.mul a b in
      let seq = Pool.sequential (fun () -> Mat.mul a b) in
      mat_eq par seq)

let prop_mul_abt_deterministic =
  qtest "Mat.mul_abt: pool == sequential and == mul with transpose" seed_arb (fun seed ->
      let a = random_mat seed 60 48 and b = random_mat (seed + 1) 55 48 in
      let par = Mat.mul_abt a b in
      let seq = Pool.sequential (fun () -> Mat.mul_abt a b) in
      mat_eq par seq && Mat.equal_approx ~tol:1e-12 par (Mat.mul a (Mat.transpose b)))

let test_mul_into_matches_mul () =
  let a = random_mat 5 33 21 and b = random_mat 6 21 27 in
  let c = Mat.zeros 33 27 in
  Mat.mul_into ~into:c a b;
  Alcotest.(check bool) "mul_into == mul" true (mat_eq c (Mat.mul a b))

let test_vec_mul_into_matches () =
  let m = random_mat 7 19 23 in
  let x = Array.init 19 (fun i -> Float.of_int i /. 7.0) in
  let y = Array.make 23 Float.nan in
  Mat.vec_mul_into ~into:y x m;
  Alcotest.(check bool) "vec_mul_into == vec_mul" true (float_array_eq y (Mat.vec_mul x m))

let test_equal_approx_short_circuit () =
  let a = Mat.zeros 4 4 and b = Mat.zeros 4 4 in
  Mat.set b 0 0 1.0;
  Alcotest.(check bool) "mismatch detected" false (Mat.equal_approx a b);
  Alcotest.(check bool) "equal matrices still equal" true (Mat.equal_approx a a)

(* --- propagation kernels -------------------------------------------------- *)

let prop_propagate_deterministic =
  qtest "Propagate kernels: pool == sequential (bit-equal)" seed_arb (fun seed ->
      (* 40 vertices x 64 features crosses the parallel-cells threshold. *)
      let g = random_graph seed ~n:40 ~p:0.2 in
      let h = random_mat (seed + 2) 40 64 in
      let pairs =
        [
          (Propagate.sum_neighbors g h, Pool.sequential (fun () -> Propagate.sum_neighbors g h));
          (Propagate.mean_neighbors g h, Pool.sequential (fun () -> Propagate.mean_neighbors g h));
          ( Propagate.mean_neighbors_backward g h,
            Pool.sequential (fun () -> Propagate.mean_neighbors_backward g h) );
          (Propagate.gcn_neighbors g h, Pool.sequential (fun () -> Propagate.gcn_neighbors g h));
          (fst (Propagate.max_neighbors g h), Pool.sequential (fun () -> fst (Propagate.max_neighbors g h)));
        ]
      in
      List.for_all (fun (p, s) -> mat_eq p s) pairs)

(* --- flat kernels vs pre-refactor references ------------------------------ *)

(* The string-key / adjacency-list implementations the flat CSR kernels
   replaced, kept as executable specifications: the library must
   reproduce their outputs bit for bit, under every pool size (this
   executable runs at GLQL_DOMAINS=1 and 4). *)
module Reference = struct
  module Sig_hash = Glql_util.Sig_hash
  module Graph = Glql_graph.Graph

  let joint_color_count colorings =
    let seen = Hashtbl.create 64 in
    List.iter (fun colors -> Array.iter (fun c -> Hashtbl.replace seen c ()) colors) colorings;
    Hashtbl.length seen

  (* Joint colour refinement with decimal string signature keys and
     [Graph.neighbors] walks — the exact pre-flat implementation. *)
  let run_joint graphs =
    let garr = Array.of_list graphs in
    let ng = Array.length garr in
    let offsets = Array.make (ng + 1) 0 in
    for i = 0 to ng - 1 do
      offsets.(i + 1) <- offsets.(i) + Graph.n_vertices garr.(i)
    done;
    let total = offsets.(ng) in
    let owner = Array.make total 0 in
    for i = 0 to ng - 1 do
      Array.fill owner offsets.(i) (Graph.n_vertices garr.(i)) i
    done;
    let interner = Sig_hash.Interner.create () in
    let keys = Array.make total "" in
    let intern_all () =
      let out = Array.init ng (fun gi -> Array.make (Graph.n_vertices garr.(gi)) 0) in
      for idx = 0 to total - 1 do
        let gi = owner.(idx) in
        out.(gi).(idx - offsets.(gi)) <- Sig_hash.Interner.intern interner keys.(idx)
      done;
      Array.to_list out
    in
    for idx = 0 to total - 1 do
      let gi = owner.(idx) in
      let v = idx - offsets.(gi) in
      keys.(idx) <- "L" ^ Sig_hash.of_float_vector (Graph.label garr.(gi) v)
    done;
    let current = ref (intern_all ()) in
    let history = ref [ !current ] in
    let count = ref (joint_color_count !current) in
    let rounds = ref 0 in
    let continue_ = ref true in
    while !continue_ && !rounds < total + 1 do
      let colors = Array.of_list !current in
      for idx = 0 to total - 1 do
        let gi = owner.(idx) in
        let v = idx - offsets.(gi) in
        let c = colors.(gi) in
        let nb = Array.map (fun u -> c.(u)) (Graph.neighbors garr.(gi) v) in
        keys.(idx) <- string_of_int c.(v) ^ "|" ^ Sig_hash.of_int_multiset nb
      done;
      let next = intern_all () in
      let count' = joint_color_count next in
      current := next;
      history := next :: !history;
      incr rounds;
      if count' = !count then continue_ := false else count := count'
    done;
    (List.rev !history, !current, !rounds)

  let sum_neighbors g h =
    let n = Graph.n_vertices g and d = Mat.cols h in
    let out = Mat.zeros n d in
    for v = 0 to n - 1 do
      Array.iter
        (fun u ->
          for j = 0 to d - 1 do
            Mat.set out v j (Mat.get out v j +. Mat.get h u j)
          done)
        (Graph.neighbors g v)
    done;
    out

  let mean_neighbors g h =
    let out = sum_neighbors g h in
    for v = 0 to Graph.n_vertices g - 1 do
      let deg = Graph.degree g v in
      if deg > 0 then
        for j = 0 to Mat.cols h - 1 do
          Mat.set out v j (Mat.get out v j /. float_of_int deg)
        done
    done;
    out

  let mean_neighbors_backward g dz =
    let n = Graph.n_vertices g and d = Mat.cols dz in
    let out = Mat.zeros n d in
    for u = 0 to n - 1 do
      Array.iter
        (fun v ->
          let inv = 1.0 /. float_of_int (Graph.degree g v) in
          for j = 0 to d - 1 do
            Mat.set out u j (Mat.get out u j +. (inv *. Mat.get dz v j))
          done)
        (Graph.neighbors g u)
    done;
    out

  let max_neighbors g h =
    let n = Graph.n_vertices g and d = Mat.cols h in
    let out = Mat.zeros n d in
    let arg = Array.make_matrix n d (-1) in
    for v = 0 to n - 1 do
      let nb = Graph.neighbors g v in
      if Array.length nb > 0 then
        for j = 0 to d - 1 do
          let best = ref nb.(0) in
          Array.iter (fun u -> if Mat.get h u j > Mat.get h !best j then best := u) nb;
          Mat.set out v j (Mat.get h !best j);
          arg.(v).(j) <- !best
        done
    done;
    (out, arg)

  let gcn_neighbors g h =
    let n = Graph.n_vertices g and d = Mat.cols h in
    let inv_sqrt_deg =
      Array.init n (fun v -> 1.0 /. sqrt (float_of_int (Graph.degree g v + 1)))
    in
    let out = Mat.zeros n d in
    for v = 0 to n - 1 do
      let self_coef = inv_sqrt_deg.(v) *. inv_sqrt_deg.(v) in
      for j = 0 to d - 1 do
        Mat.set out v j (self_coef *. Mat.get h v j)
      done;
      Array.iter
        (fun u ->
          let coef = inv_sqrt_deg.(v) *. inv_sqrt_deg.(u) in
          for j = 0 to d - 1 do
            Mat.set out v j (Mat.get out v j +. (coef *. Mat.get h u j))
          done)
        (Graph.neighbors g v)
    done;
    out

  let hom_tree_rooted pattern root g =
    let n = Graph.n_vertices g in
    let rec down t parent =
      let children =
        Array.to_list (Graph.neighbors pattern t) |> List.filter (fun u -> u <> parent)
      in
      let child_tables = List.map (fun c -> down c t) children in
      Array.init n (fun v ->
          List.fold_left
            (fun acc table ->
              if acc = 0.0 then 0.0
              else begin
                let s = ref 0.0 in
                Array.iter (fun u -> s := !s +. table.(u)) (Graph.neighbors g v);
                acc *. !s
              end)
            1.0 child_tables)
    in
    down root (-1)

  let hom_tree pattern g =
    Array.fold_left ( +. ) 0.0 (hom_tree_rooted pattern 0 g)

  let profile patterns g = Array.of_list (List.map (fun p -> hom_tree p g) patterns)
end

let prop_wl_matches_reference =
  qtest "flat WL == string-key reference (history, rounds)" seed_arb (fun seed ->
      let corpus =
        List.init 3 (fun i -> random_graph (seed + (11 * i)) ~n:(6 + ((seed + i) mod 9)) ~p:0.3)
      in
      let flat = Cr.run_joint corpus in
      let ref_history, ref_stable, ref_rounds = Reference.run_joint corpus in
      Cr.history flat = ref_history
      && Cr.stable_colors flat = ref_stable
      && Cr.rounds flat = ref_rounds)

let prop_propagate_matches_reference =
  qtest "flat propagate == adjacency-list reference (bit-equal)" seed_arb (fun seed ->
      let g = random_graph seed ~n:40 ~p:0.2 in
      let h = random_mat (seed + 2) 40 64 in
      mat_eq (Propagate.sum_neighbors g h) (Reference.sum_neighbors g h)
      && mat_eq (Propagate.mean_neighbors g h) (Reference.mean_neighbors g h)
      && mat_eq (Propagate.mean_neighbors_backward g h) (Reference.mean_neighbors_backward g h)
      && mat_eq (Propagate.gcn_neighbors g h) (Reference.gcn_neighbors g h)
      &&
      let fo, fa = Propagate.max_neighbors g h in
      let ro, ra = Reference.max_neighbors g h in
      mat_eq fo ro && fa = ra)

let prop_hom_matches_reference =
  qtest "flat hom profile == reference tree DP (bit-equal)" seed_arb (fun seed ->
      let g = random_graph seed ~n:(5 + (seed mod 8)) ~p:0.4 in
      float_array_eq (Count.profile trees6 g) (Reference.profile trees6 g))

(* --- ERM training --------------------------------------------------------- *)

let molecules = Dataset.molecules (Rng.create 4) ~n_graphs:8 ~n_atoms:8 ~n_atom_types:3

let train_once () =
  let model = Model.gin_classifier (Rng.create 8) ~in_dim:3 ~width:8 ~depth:2 ~n_classes:2 in
  Erm.train_graph_classifier ~epochs:2 model molecules ~train_indices:[ 0; 1; 2; 3; 4; 5 ]
    ~test_indices:[ 6; 7 ]

let test_erm_classifier_deterministic () =
  let par = train_once () in
  let seq = Pool.sequential train_once in
  Alcotest.(check bool)
    "losses bit-equal" true
    (List.for_all2 Float.equal par.Erm.losses seq.Erm.losses);
  Alcotest.(check bool)
    "metrics equal" true
    (Float.equal par.Erm.train_metric seq.Erm.train_metric
    && Float.equal par.Erm.test_metric seq.Erm.test_metric)

let regression =
  Dataset.regression_corpus (Rng.create 6) ~n_graphs:8 ~generator:(Dataset.er_generator ~n:8)
    ~target:Dataset.two_walk_count ~target_name:"two-walk"

let regress_once () =
  let model =
    Model.create ~readout:Model.RSum
      ~head:
        (Glql_nn.Mlp.create (Rng.create 7) ~sizes:[ 8; 1 ] ~act:Glql_nn.Activation.Identity
           ~out_act:Glql_nn.Activation.Identity)
      [ Glql_gnn.Layer.gnn101 (Rng.create 7) ~din:1 ~dout:8 ~act:Glql_nn.Activation.Tanh ]
  in
  Erm.train_graph_regressor ~epochs:2 model regression ~train_indices:[ 0; 1; 2; 3; 4 ]
    ~test_indices:[ 5; 6; 7 ]

let test_erm_regressor_deterministic () =
  let par = regress_once () in
  let seq = Pool.sequential regress_once in
  Alcotest.(check bool)
    "losses bit-equal" true
    (List.for_all2 Float.equal par.Erm.losses seq.Erm.losses);
  Alcotest.(check bool)
    "mse equal" true
    (Float.equal par.Erm.train_metric seq.Erm.train_metric
    && Float.equal par.Erm.test_metric seq.Erm.test_metric)

(* --- featurize recipes (protocol v6) ------------------------------------ *)

module SCache = Glql_server.Cache
module SRegistry = Glql_server.Registry
module Featurize = Glql_server.Featurize
module SP = Glql_server.Protocol

(* Schema plus content digest: equal pairs mean every float of the
   feature matrix is bit-identical, column layout included. *)
let featurize_once ~mode ~recipe seed =
  let g = random_graph seed ~n:24 ~p:0.2 in
  let registry = SRegistry.create () in
  let gen = SRegistry.register_prebuilt registry ~name:"r" ~spec:"random" g in
  let cache = SCache.create ~plan_capacity:16 ~coloring_capacity:8 () in
  let cols =
    match Featurize.parse_recipe recipe with Ok c -> c | Error e -> failwith e
  in
  match Featurize.build ~cache ~graph_name:"r" ~gen mode g cols with
  | Ok b -> (b.Featurize.b_schema, Featurize.row_digest b.Featurize.b_rows)
  | Error (code, msg) -> failwith (code ^ ": " ^ msg)

let vertex_recipe = "deg;wl;hom3;label;gel:agg_sum{x2}([1] | E(x1,x2))"
let graph_recipe = "deg;wl;kwl2;hom3"

let test_featurize_deterministic =
  qtest ~count:15 "featurize: pool == sequential (schema + digest)" seed_arb (fun seed ->
      let par = featurize_once ~mode:SP.Fm_vertex ~recipe:vertex_recipe seed in
      let seq =
        Pool.sequential (fun () -> featurize_once ~mode:SP.Fm_vertex ~recipe:vertex_recipe seed)
      in
      let gpar = featurize_once ~mode:SP.Fm_graph ~recipe:graph_recipe seed in
      let gseq =
        Pool.sequential (fun () -> featurize_once ~mode:SP.Fm_graph ~recipe:graph_recipe seed)
      in
      par = seq && gpar = gseq)

let () =
  Alcotest.run "glql-parallel"
    [
      ( Printf.sprintf "pool (size %d)" (Pool.size ()),
        [
          case "size env" test_size_env;
          case "parallel_for" test_parallel_for;
          case "parallel_map_array" test_parallel_map;
          case "parallel_reduce order" test_reduce_order;
          case "exception propagation" test_exception;
          case "nested regions" test_nested;
          case "sequential escape hatch" test_sequential_restores;
        ] );
      ( "wl",
        [
          prop_run_joint_deterministic;
          prop_graph_partition_deterministic;
          prop_incremental_recolor_bit_identical;
        ] );
      ( "hom",
        [ prop_hom_profile_deterministic; prop_equal_profiles_deterministic ] );
      ( "mat",
        [
          prop_mul_deterministic;
          prop_mul_abt_deterministic;
          case "mul_into" test_mul_into_matches_mul;
          case "vec_mul_into" test_vec_mul_into_matches;
          case "equal_approx" test_equal_approx_short_circuit;
        ] );
      ("propagate", [ prop_propagate_deterministic ]);
      ( "flat-core",
        [
          prop_wl_matches_reference;
          prop_propagate_matches_reference;
          prop_hom_matches_reference;
        ] );
      ( "erm",
        [
          case "graph classifier deterministic" test_erm_classifier_deterministic;
          case "graph regressor deterministic" test_erm_regressor_deterministic;
        ] );
      ("featurize", [ test_featurize_deterministic ]);
    ]
