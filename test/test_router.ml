(* Unit tests for the sharded-topology layer: shard placement and the
   router's pure reply merging (STATS aggregation, GRAPHS ordering,
   snapshot summaries). The socket loop itself is covered end-to-end by
   test_e2e_router and the fault harness. *)

open Helpers
module J = Glql_util.Json
module Shard = Glql_server.Shard
module Router = Glql_server.Router

let prop_placement_stable =
  qtest ~count:200 "placement stable and in range"
    QCheck.(pair (string_of_size (QCheck.Gen.return 8)) (int_range 1 16))
    (fun (name, shards) ->
      let s1 = Shard.id_of_name ~shards name in
      let s2 = Shard.id_of_name ~shards name in
      s1 = s2 && s1 >= 0 && s1 < shards)

let test_placement_canonical () =
  (* Alternate spellings of one spec-as-name co-locate: placement goes
     through Registry.canonical_spec. *)
  List.iter
    (fun shards ->
      check_int
        (Printf.sprintf "spec spellings co-locate @%d" shards)
        (Shard.id_of_name ~shards "sbm10+path3")
        (Shard.id_of_name ~shards "sbm10 + path3"))
    [ 1; 2; 3; 5; 8 ]

let test_paths () =
  Alcotest.(check string) "worker socket" "/tmp/r.sock.shard2" (Shard.worker_socket ~base:"/tmp/r.sock" ~shard:2);
  Alcotest.(check string) "replica socket" "/tmp/r.sock.shard2r1"
    (Shard.replica_socket ~base:"/tmp/r.sock" ~shard:2 ~index:1);
  Alcotest.(check string) "snapshot" "/tmp/r.sock.shard2r1.glqs"
    (Shard.snapshot_of_socket "/tmp/r.sock.shard2r1")

(* A synthetic per-worker STATS payload shaped like Metrics.to_json. *)
let worker_stats ~requests ~errors ~graphs ~wl ~load =
  J.Obj
    [
      ("uptime_s", J.Float 1.5);
      ("requests", J.Int requests);
      ("errors", J.Int errors);
      ("bytes_in", J.Int (10 * requests));
      ("bytes_out", J.Int (20 * requests));
      ("latency_p50_ms", J.Float 0.25);
      ("by_command", J.Obj [ ("WL", J.Int wl); ("LOAD", J.Int load) ]);
      ("protocol_version", J.Int 4);
      ("graphs_registered", J.Int graphs);
    ]

let int_field j k =
  match J.int_member k j with Some i -> i | None -> Alcotest.failf "missing field %s" k

let test_merge_stats_sums () =
  let parts =
    [
      (0, "primary", Some (worker_stats ~requests:10 ~errors:1 ~graphs:2 ~wl:4 ~load:2));
      (1, "primary", Some (worker_stats ~requests:7 ~errors:0 ~graphs:1 ~wl:3 ~load:1));
      (2, "primary", None);
      (* Replica counters are reported but must not inflate the sums. *)
      (0, "replica1", Some (worker_stats ~requests:100 ~errors:9 ~graphs:2 ~wl:90 ~load:0));
    ]
  in
  let merged = Router.merge_stats ~router:(J.Obj [ ("role", J.Str "router") ]) ~shards:3 ~parts in
  (* Per-shard primary counters sum to the merged reply. *)
  check_int "requests sum" 17 (int_field merged "requests");
  check_int "errors sum" 1 (int_field merged "errors");
  check_int "bytes_in sum" 170 (int_field merged "bytes_in");
  check_int "graphs sum" 3 (int_field merged "graphs_registered");
  check_int "protocol_version consensus" 4 (int_field merged "protocol_version");
  check_int "shards" 3 (int_field merged "shards");
  (match J.member "by_command" merged with
  | Some bc ->
      check_int "by_command WL sum" 7 (int_field bc "WL");
      check_int "by_command LOAD sum" 3 (int_field bc "LOAD")
  | None -> Alcotest.fail "no by_command");
  (* Every member appears in the detail list, down ones included. *)
  (match J.member "members" merged with
  | Some (J.List members) ->
      check_int "member count" 4 (List.length members);
      let ups =
        List.filter (fun m -> J.member "up" m = Some (J.Bool true)) members
      in
      check_int "up members" 3 (List.length ups)
  | _ -> Alcotest.fail "no members list");
  (* Floats (uptime, percentiles) are per-member data, not summable. *)
  check_bool "no summed uptime" true (J.member "uptime_s" merged = None)

let test_merge_stats_all_down () =
  let merged =
    Router.merge_stats ~router:(J.Obj []) ~shards:2
      ~parts:[ (0, "primary", None); (1, "primary", None) ]
  in
  match J.member "members" merged with
  | Some (J.List members) -> check_int "members listed" 2 (List.length members)
  | _ -> Alcotest.fail "no members list"

let graphs_entry name nv ne =
  J.Obj [ ("name", J.Str name); ("vertices", J.Int nv); ("edges", J.Int ne) ]

let test_merge_graphs_sorted () =
  (* The merged rendering must be byte-identical to what one registry
     holding all the graphs would print: sorted by (name, nv, ne). *)
  let parts =
    [
      J.List [ graphs_entry "zeta" 5 4; graphs_entry "alpha" 3 2 ];
      J.List [ graphs_entry "mid" 7 6 ];
      J.List [];
    ]
  in
  let merged = Router.merge_graphs parts in
  let single =
    J.List [ graphs_entry "alpha" 3 2; graphs_entry "mid" 7 6; graphs_entry "zeta" 5 4 ]
  in
  Alcotest.(check string) "byte-identical to one registry" (J.to_string single) (J.to_string merged)

let test_merge_snapshots () =
  let part shard bytes graphs =
    ( shard,
      J.Obj
        [
          ("file", J.Str (Printf.sprintf "snap.shard%d" shard));
          ("bytes", J.Int bytes);
          ("graphs", J.Int graphs);
          ("colorings", J.Int 1);
          ("plans", J.Int 0);
        ] )
  in
  let merged = Router.merge_snapshots [ part 0 100 2; part 1 250 3 ] in
  check_int "bytes sum" 350 (int_field merged "bytes");
  check_int "graphs sum" 5 (int_field merged "graphs");
  check_int "colorings sum" 2 (int_field merged "colorings");
  match J.member "shards" merged with
  | Some (J.List entries) -> check_int "per-shard entries" 2 (List.length entries)
  | _ -> Alcotest.fail "no shards list"

let suite =
  ( "router",
    [
      prop_placement_stable;
      case "placement canonicalises specs" test_placement_canonical;
      case "topology path conventions" test_paths;
      case "stats merge sums primaries" test_merge_stats_sums;
      case "stats merge all down" test_merge_stats_all_down;
      case "graphs merge byte-identical" test_merge_graphs_sorted;
      case "snapshot merge sums" test_merge_snapshots;
    ] )
