(* Tests for the glqld server stack: canonical plan-cache keys, the wire
   protocol parser (including malformed input), the graph registry, and
   the full request pipeline via Server.handle_line. *)

open Helpers
module P = Glql_server.Protocol
module Registry = Glql_server.Registry
module Cache = Glql_server.Cache
module Server = Glql_server.Server
module Parser = Glql_gel.Parser
module Expr = Glql_gel.Expr
module Normal_form = Glql_gel.Normal_form
module Graph = Glql_graph.Graph
module Generators = Glql_graph.Generators
module Cr = Glql_wl.Color_refinement

let key src = Normal_form.cache_key (Parser.parse src)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* --- cache keys ---------------------------------------------------------- *)

let test_key_alpha_equivalent () =
  Alcotest.(check string)
    "renamed binder" (key "agg_sum{x2}([1] | E(x1,x2))")
    (key "agg_sum{x9}([1] | E(x1,x9))");
  Alcotest.(check string)
    "nested binders renamed"
    (key "agg_sum{x2}(agg_count{x3}([1] | E(x2,x3)) | E(x1,x2))")
    (key "agg_sum{x5}(agg_count{x4}([1] | E(x5,x4)) | E(x1,x5))")

let test_key_free_var_renaming () =
  (* Renaming free variables while preserving their order is invisible. *)
  Alcotest.(check string)
    "free var renamed" (key "agg_sum{x2}([1] | E(x1,x2))")
    (key "agg_sum{x2}([1] | E(x7,x2))")

let test_key_symmetric_edge () =
  Alcotest.(check string)
    "edge arg order" (key "agg_sum{x2}([1] | E(x1,x2))")
    (key "agg_sum{x2}([1] | E(x2,x1))")

let test_key_binder_reordering () =
  Alcotest.(check string)
    "binder list order"
    (key "agg_sum{x2,x3}([1] | product(E(x1,x2), E(x2,x3)))")
    (key "agg_sum{x3,x2}([1] | product(E(x1,x3), E(x3,x2)))")

let test_key_distinct_queries () =
  let keys =
    List.map key
      [
        "agg_sum{x2}([1] | E(x1,x2))";
        "agg_max{x2}([1] | E(x1,x2))";
        "agg_sum{x2}([2] | E(x1,x2))";
        "agg_sum{x2}(agg_count{x3}([1] | E(x2,x3)) | E(x1,x2))";
        "agg_sum{x1,x2}([1] | E(x1,x2))";
      ]
  in
  check_int "all distinct" (List.length keys)
    (List.length (List.sort_uniq compare keys))

(* --- protocol ------------------------------------------------------------ *)

let test_tokenize () =
  (match P.tokenize "QUERY g 'a b' tail" with
  | Ok toks -> Alcotest.(check (list string)) "quoted token" [ "QUERY"; "g"; "a b"; "tail" ] toks
  | Error e -> Alcotest.failf "tokenize failed: %s" e);
  (match P.tokenize "say \"it's fine\"" with
  | Ok toks -> Alcotest.(check (list string)) "double quotes" [ "say"; "it's fine" ] toks
  | Error e -> Alcotest.failf "tokenize failed: %s" e);
  check_bool "unbalanced quote rejected" true
    (match P.tokenize "QUERY g 'unclosed" with Error _ -> true | Ok _ -> false)

let plain req = Ok { P.req; traced = false }

let test_parse_request_ok () =
  check_bool "ping case-insensitive" true (P.parse_request "ping" = plain P.Ping);
  check_bool "query parsed" true
    (P.parse_request "QUERY g 'agg_sum{x2}([1] | E(x1,x2))'"
    = plain (P.Query ("g", "agg_sum{x2}([1] | E(x1,x2))")));
  check_bool "load parsed" true
    (P.parse_request "LOAD g cycle3+cycle3" = plain (P.Load ("g", "cycle3+cycle3")));
  check_bool "wl default rounds" true (P.parse_request "WL g" = plain (P.Wl ("g", None)));
  check_bool "wl explicit rounds" true (P.parse_request "wl g 2" = plain (P.Wl ("g", Some 2)));
  check_bool "explain parsed" true
    (P.parse_request "EXPLAIN g 'agg_sum{x2}([1] | E(x1,x2))'"
    = plain (P.Explain ("g", "agg_sum{x2}([1] | E(x1,x2))")));
  check_bool "version parsed" true (P.parse_request "VERSION" = plain P.Version)

let test_parse_request_trace_option () =
  (* A trailing bare TRACE is an option on any command, case-insensitive. *)
  check_bool "ping trace" true (P.parse_request "PING TRACE" = Ok { P.req = P.Ping; traced = true });
  check_bool "query trace" true
    (P.parse_request "QUERY g 'agg_sum{x2}([1] | E(x1,x2))' trace"
    = Ok { P.req = P.Query ("g", "agg_sum{x2}([1] | E(x1,x2))"); traced = true });
  check_bool "wl trace keeps rounds" true
    (P.parse_request "WL g 2 TRACE" = Ok { P.req = P.Wl ("g", Some 2); traced = true });
  (* A quoted 'TRACE' argument in last position is still consumed as the
     option (tokens do not remember their quoting); a graph named TRACE
     must therefore not rely on trailing position. *)
  check_bool "trace alone is not a command" true
    (match P.parse_request "TRACE" with Error _ -> true | Ok _ -> false)

let test_parse_mutate () =
  check_bool "single add" true
    (P.parse_request "MUTATE g ADD_EDGES 0 1" = plain (P.Mutate ("g", [ P.M_add_edge (0, 1) ])));
  (* Sections mix, repeat, and are case-insensitive; SET_LABEL consumes
     floats up to the next keyword. *)
  check_bool "mixed batch" true
    (P.parse_request "MUTATE g ADD_EDGES 0 1 2 3 DEL_EDGES 1 2 SET_LABEL 4 0.5 1.5 add_edges 3 4"
    = plain
        (P.Mutate
           ( "g",
             [
               P.M_add_edge (0, 1);
               P.M_add_edge (2, 3);
               P.M_del_edge (1, 2);
               P.M_set_label (4, [| 0.5; 1.5 |]);
               P.M_add_edge (3, 4);
             ] )));
  check_bool "traced mutate" true
    (P.parse_request "MUTATE g DEL_EDGES 0 1 TRACE"
    = Ok { P.req = P.Mutate ("g", [ P.M_del_edge (0, 1) ]); traced = true });
  List.iter
    (fun line ->
      check_bool (Printf.sprintf "rejects %S" line) true
        (match P.parse_request line with Error _ -> true | Ok _ -> false))
    [
      "MUTATE";
      "MUTATE g";
      "MUTATE g ADD_EDGES";
      "MUTATE g ADD_EDGES 0";
      "MUTATE g ADD_EDGES 0 x";
      "MUTATE g SET_LABEL 3";
      "MUTATE g SET_LABEL nope 1.0";
      "MUTATE g 0 1";
    ]

let test_parse_request_malformed () =
  let malformed =
    [
      "";
      "   ";
      "FROBNICATE x";
      "LOAD missing-spec";
      "QUERY g";
      "QUERY g 'unclosed";
      "WL g notanumber";
      "KWL g";
      "HOM g too many args here";
      "PING extra";
    ]
  in
  List.iter
    (fun line ->
      check_bool (Printf.sprintf "rejects %S" line) true
        (match P.parse_request line with Error _ -> true | Ok _ -> false))
    malformed

let test_json_rendering () =
  Alcotest.(check string) "escaping" "\"a\\\"b\\n\"" (P.json_to_string (P.Str "a\"b\n"));
  Alcotest.(check string)
    "object" "{\"a\":1,\"b\":[true,null]}"
    (P.json_to_string (P.Obj [ ("a", P.Int 1); ("b", P.List [ P.Bool true; P.Null ]) ]));
  Alcotest.(check string) "integer float" "3" (P.json_to_string (P.Float 3.0));
  (* Non-finite floats have no JSON token: all of nan, +inf, -inf must
     render as null, never as the invalid literals "inf"/"-inf". *)
  Alcotest.(check string) "nan" "null" (P.json_to_string (P.Float Float.nan));
  Alcotest.(check string) "+inf" "null" (P.json_to_string (P.Float Float.infinity));
  Alcotest.(check string) "-inf" "null" (P.json_to_string (P.Float Float.neg_infinity));
  Alcotest.(check string)
    "inf inside a list" "[1,null,2]"
    (P.json_to_string (P.List [ P.Float 1.0; P.Float Float.infinity; P.Float 2.0 ]));
  check_bool "ok tagged" true (P.is_ok (P.ok P.Null));
  check_bool "err tagged" false (P.is_ok (P.err "boom"))

(* --- registry ------------------------------------------------------------ *)

let check_spec spec nv ne =
  match Registry.graph_of_spec spec with
  | Ok g ->
      check_int (spec ^ " vertices") nv (Graph.n_vertices g);
      check_int (spec ^ " edges") ne (Graph.n_edges g)
  | Error e -> Alcotest.failf "spec %s rejected: %s" spec e

let test_registry_specs () =
  check_spec "petersen" 10 15;
  check_spec "cycle5" 5 5;
  check_spec "path4" 4 3;
  check_spec "complete4" 4 6;
  check_spec "grid2x3" 6 7;
  check_spec "cycle3+cycle3" 6 6;
  List.iter
    (fun bad ->
      check_bool (Printf.sprintf "rejects %S" bad) true
        (match Registry.graph_of_spec bad with Error _ -> true | Ok _ -> false))
    [ "nosuchgraph"; "cycle"; "cycle3+"; "gridx3"; "" ]

let test_registry_find_caches () =
  let r = Registry.create () in
  check_int "starts empty" 0 (Registry.n_graphs r);
  (match Registry.find r "cycle4" with
  | Ok g -> check_int "spec fallback" 4 (Graph.n_vertices g)
  | Error e -> Alcotest.failf "find failed: %s" e);
  check_int "fallback cached" 1 (Registry.n_graphs r);
  (match Registry.register r ~name:"two" ~spec:"cycle3+cycle3" with
  | Ok g -> check_int "registered union" 6 (Graph.n_vertices g)
  | Error e -> Alcotest.failf "register failed: %s" e);
  check_bool "listed" true
    (List.exists (fun (name, nv, ne) -> name = "two" && nv = 6 && ne = 6) (Registry.list r));
  check_bool "unknown spec reported" true
    (match Registry.find r "definitely-not-a-graph" with Error _ -> true | Ok _ -> false)

let test_registry_spec_limits () =
  (* Oversized specs are rejected before any construction happens. *)
  List.iter
    (fun bad ->
      check_bool (Printf.sprintf "rejects oversized %S" bad) true
        (match Registry.graph_of_spec bad with Error _ -> true | Ok _ -> false))
    [
      "complete20000" (* ~2e8 edges *);
      "grid1000x1000" (* 1e6 vertices *);
      "cycle200001";
      "star4611686018427387902" (* n+1 wraps negative *);
      "cycle50000+cycle60000" (* union over the vertex cap *);
    ];
  check_bool "large-but-bounded spec accepted" true
    (match Registry.graph_of_spec "cycle50000" with Ok _ -> true | Error _ -> false);
  check_bool "custom limit enforced" true
    (match Registry.graph_of_spec ~max_vertices:10 "cycle11" with Error _ -> true | Ok _ -> false);
  check_bool "custom limit boundary accepted" true
    (match Registry.graph_of_spec ~max_vertices:10 "cycle10" with Ok _ -> true | Error _ -> false)

let test_registry_generations () =
  let r = Registry.create () in
  let gen name =
    match Registry.find_entry r name with
    | Ok (_, gen) -> gen
    | Error e -> Alcotest.failf "find_entry %s failed: %s" name e
  in
  ignore (Registry.register r ~name:"g" ~spec:"cycle5");
  let g0 = gen "g" in
  check_int "stable across lookups" g0 (gen "g");
  ignore (Registry.register r ~name:"g" ~spec:"petersen");
  check_bool "re-register bumps the generation" true (gen "g" > g0);
  (* The spec fallback also gets a generation a later LOAD supersedes. *)
  let f0 = gen "cycle4" in
  ignore (Registry.register r ~name:"cycle4" ~spec:"petersen");
  check_bool "shadowing a spec name bumps the generation" true (gen "cycle4" > f0)

let test_registry_mutate () =
  let r = Registry.create () in
  ignore (Registry.register r ~name:"g" ~spec:"cycle5");
  let entry () =
    match Registry.find_entry r "g" with
    | Ok (g, gen) -> (g, gen)
    | Error e -> Alcotest.failf "find_entry failed: %s" e
  in
  let _, gen0 = entry () in
  (* One batch exercising every op kind, every rejection reason, and the
     sequential (evolving-state) semantics. *)
  let outcome =
    match
      Registry.mutate r ~name:"g"
        [
          Registry.Add_edge (0, 2) (* new chord: applied *);
          Registry.Add_edge (2, 0) (* same edge, swapped: duplicate *);
          Registry.Del_edge (1, 2) (* present: applied *);
          Registry.Add_edge (1, 2) (* re-add after in-batch delete: applied *);
          Registry.Del_edge (1, 3) (* absent: rejected *);
          Registry.Add_edge (0, 0) (* self-loop: rejected *);
          Registry.Add_edge (0, 9) (* out of range: rejected *);
          Registry.Set_label (2, [| 7.0 |]) (* generator labels are 1-dim: applied *);
          Registry.Set_label (2, [| 1.0; 2.0 |]) (* wrong dimension: rejected *);
        ]
    with
    | Ok o -> o
    | Error e -> Alcotest.failf "mutate failed: %s" e
  in
  check_int "applied adds" 2 outcome.Registry.m_added;
  check_int "applied dels" 1 outcome.Registry.m_deleted;
  check_int "applied labels" 1 outcome.Registry.m_relabeled;
  check_int "rejections" 5 (List.length outcome.Registry.m_rejected);
  List.iter
    (fun (rej : Registry.rejected) ->
      Alcotest.(check string)
        (Printf.sprintf "rejection %d code" rej.Registry.r_index)
        "ERR_BAD_ARG" rej.Registry.r_code)
    outcome.Registry.m_rejected;
  Alcotest.(check (list int))
    "rejection indices" [ 1; 4; 5; 6; 8 ]
    (List.map (fun (rej : Registry.rejected) -> rej.Registry.r_index) outcome.Registry.m_rejected);
  (* Net effect: the (1,2) delete/re-add cancels, so only the (0,2) chord
     lands; the frontier reports exactly the changed rows. *)
  check_int "net edges" 6 (Graph.n_edges outcome.Registry.m_graph);
  check_bool "chord present" true (Graph.has_edge outcome.Registry.m_graph 0 2);
  check_bool "cycle edge survived" true (Graph.has_edge outcome.Registry.m_graph 1 2);
  Alcotest.(check (list int)) "touched adjacency rows" [ 0; 2 ] outcome.Registry.m_touched_adj;
  Alcotest.(check (list int)) "touched labels" [ 2 ] outcome.Registry.m_touched_lab;
  check_bool "generation advanced in place" true (outcome.Registry.m_gen > gen0);
  let g_now, gen_now = entry () in
  check_int "binding advanced" outcome.Registry.m_gen gen_now;
  check_int "binding holds the mutated graph" 6 (Graph.n_edges g_now);
  check_int "still one binding" 1 (Registry.n_graphs r);
  (* An all-rejected batch leaves the binding (and generation) alone. *)
  (match Registry.mutate r ~name:"g" [ Registry.Add_edge (0, 0) ] with
  | Ok o ->
      check_int "no-op keeps the generation" gen_now o.Registry.m_gen;
      check_int "no-op rejected op reported" 1 (List.length o.Registry.m_rejected)
  | Error e -> Alcotest.failf "all-rejected mutate errored: %s" e);
  (* MUTATE never builds specs; but a spec-fallback binding is mutable
     under any spelling of its canonical spec. *)
  check_bool "unknown graph is an error" true
    (match Registry.mutate r ~name:"nosuch" [ Registry.Add_edge (0, 1) ] with
    | Error _ -> true
    | Ok _ -> false);
  ignore (Registry.find r "cycle4");
  (match Registry.mutate r ~name:"cycle4 " [ Registry.Add_edge (0, 2) ] with
  | Ok o -> check_int "spec-fallback binding mutated" 5 (Graph.n_edges o.Registry.m_graph)
  | Error e -> Alcotest.failf "spec-fallback mutate failed: %s" e)

(* --- the in-process request pipeline ------------------------------------- *)

let make_server () =
  Server.create { Server.default_config with Server.socket_path = None }

let test_handle_line_flow () =
  let t = make_server () in
  check_bool "hello ok" true (P.is_ok (Server.handle_line t "HELLO"));
  check_bool "load ok" true (P.is_ok (Server.handle_line t "LOAD g petersen"));
  let src = "agg_sum{x2}([1] | E(x1,x2))" in
  let reply1 = Server.handle_line t (Printf.sprintf "QUERY g '%s'" src) in
  check_bool "first query ok" true (P.is_ok reply1);
  check_bool "first is a plan miss" true (contains ~needle:"\"plan_cache\":\"miss\"" reply1);
  (* Alpha-renamed source must land on the same cached plan. *)
  let reply2 = Server.handle_line t "QUERY g 'agg_sum{x6}([1] | E(x1,x6))'" in
  check_bool "second query ok" true (P.is_ok reply2);
  check_bool "alpha-equivalent query is a plan hit" true
    (contains ~needle:"\"plan_cache\":\"hit\"" reply2);
  (* The served values must match direct Glql_gel evaluation. *)
  let g = match Registry.graph_of_spec "petersen" with Ok g -> g | Error e -> failwith e in
  let table = Expr.eval g (Parser.parse src) in
  let expected =
    P.json_to_string
      (P.List
         (Array.to_list
            (Array.map
               (fun v -> P.List (Array.to_list (Array.map (fun x -> P.Float x) v)))
               table.Expr.tdata)))
  in
  check_bool "values match direct evaluation" true
    (contains ~needle:("\"values\":" ^ expected) reply1);
  check_bool "both replies identical" true
    (contains ~needle:("\"values\":" ^ expected) reply2)

let test_handle_line_wl_cache () =
  let t = make_server () in
  let first = Server.handle_line t "WL petersen" in
  check_bool "wl ok" true (P.is_ok first);
  check_bool "first is a coloring miss" true (contains ~needle:"\"coloring_cache\":\"miss\"" first);
  check_bool "petersen is CR-homogeneous" true (contains ~needle:"\"classes\":1" first);
  let second = Server.handle_line t "WL petersen 1" in
  check_bool "smaller-round request hits the same entry" true
    (contains ~needle:"\"coloring_cache\":\"hit\"" second);
  let kwl = Server.handle_line t "KWL petersen 2" in
  check_bool "kwl ok" true (P.is_ok kwl);
  check_bool "kwl rejects bad k" true
    (not (P.is_ok (Server.handle_line t "KWL petersen 7")))

let test_reload_serves_fresh_coloring () =
  let t = make_server () in
  check_bool "load cycle5" true (P.is_ok (Server.handle_line t "LOAD g cycle5"));
  let first = Server.handle_line t "WL g" in
  check_bool "wl on cycle5 ok" true (P.is_ok first);
  check_bool "cycle5 is CR-homogeneous" true (contains ~needle:"\"classes\":1" first);
  check_bool "cycle5 size" true (contains ~needle:"\"n\":5" first);
  (* Re-LOAD the same name: the cached cycle5 colouring must not be served
     for the replacement graph. *)
  check_bool "reload g as path4" true (P.is_ok (Server.handle_line t "LOAD g path4"));
  let second = Server.handle_line t "WL g" in
  check_bool "wl after reload ok" true (P.is_ok second);
  check_bool "fresh vertex count" true (contains ~needle:"\"n\":4" second);
  check_bool "recomputed, not served stale" true
    (contains ~needle:"\"coloring_cache\":\"miss\"" second);
  check_bool "path4 has end/middle classes" true (contains ~needle:"\"classes\":2" second);
  (* Same hazard via the spec fallback: WL on a bare spec name, then LOAD
     shadows that name with a different graph. *)
  ignore (Server.handle_line t "WL cycle6");
  check_bool "shadow spec name" true (P.is_ok (Server.handle_line t "LOAD cycle6 petersen"));
  let shadowed = Server.handle_line t "WL cycle6" in
  check_bool "shadowed wl ok" true (P.is_ok shadowed);
  check_bool "serves the shadowing graph" true (contains ~needle:"\"n\":10" shadowed);
  check_bool "shadowed colouring recomputed" true
    (contains ~needle:"\"coloring_cache\":\"miss\"" shadowed)

let test_cell_guard_overflow () =
  let t = make_server () in
  (* Nine free variables on a 150-vertex graph: 150^9 ~ 3.8e19 overflows
     max_int, so an int-rounded guard would be bypassed and evaluation
     would attempt an absurd table. The float comparison must reject. *)
  let src =
    "agg_sum{x10}([1] | product(E(x1,x2), product(E(x3,x4), product(E(x5,x6), \
     product(E(x7,x8), E(x9,x10))))))"
  in
  let reply = Server.handle_line t (Printf.sprintf "QUERY cycle150 '%s'" src) in
  check_bool "overflowing query rejected" false (P.is_ok reply);
  check_bool "rejection names the cell limit" true (contains ~needle:"cells" reply)

let test_handle_line_errors () =
  let t = make_server () in
  List.iter
    (fun line ->
      let reply = Server.handle_line t line in
      check_bool (Printf.sprintf "ERR reply for %S" line) false (P.is_ok reply);
      check_bool "starts with ERR" true
        (String.length reply >= 3 && String.sub reply 0 3 = "ERR"))
    [
      "garbage request";
      "LOAD g nosuchgenerator";
      "QUERY nosuchgraph 'agg_sum{x2}([1] | E(x1,x2))'";
      "QUERY petersen 'agg_sum{x2}(['";
      "QUERY petersen 'unclosed";
      "HOM petersen 99";
    ];
  (* Errors are counted but never crash the pipeline. *)
  let stats = Server.handle_line t "STATS" in
  check_bool "stats ok" true (P.is_ok stats);
  (* STATS reports the requests recorded before it, i.e. the six above. *)
  check_bool "stats counts requests" true (contains ~needle:"\"requests\":6" stats);
  check_bool "stats counts errors" true (contains ~needle:"\"errors\":6" stats);
  check_bool "stats exposes the plan cache" true (contains ~needle:"\"plan_misses\"" stats)

(* Extract the float right after ["<key>":] in a one-line JSON reply. *)
let float_after key s =
  let needle = "\"" ^ key ^ "\":" in
  let nl = String.length needle and n = String.length s in
  let rec find i = if i + nl > n then None else if String.sub s i nl = needle then Some (i + nl) else find (i + 1) in
  match find 0 with
  | None -> None
  | Some start ->
      let stop = ref start in
      let is_num c = (c >= '0' && c <= '9') || c = '.' || c = '-' || c = '+' || c = 'e' || c = 'E' in
      while !stop < n && is_num s.[!stop] do incr stop done;
      float_of_string_opt (String.sub s start (!stop - start))

(* All the floats following any occurrence of ["<key>":]. *)
let floats_after key s =
  let needle = "\"" ^ key ^ "\":" in
  let nl = String.length needle and n = String.length s in
  let out = ref [] in
  let i = ref 0 in
  while !i + nl <= n do
    if String.sub s !i nl = needle then begin
      match float_after key (String.sub s !i (n - !i)) with
      | Some f -> out := f :: !out
      | None -> ()
    end;
    incr i
  done;
  List.rev !out

let test_handle_line_explain () =
  let t = make_server () in
  ignore (Server.handle_line t "LOAD g petersen");
  let src = "agg_sum{x2}([1] | E(x1,x2))" in
  ignore (Server.handle_line t (Printf.sprintf "QUERY g '%s'" src));
  (* Warm cache: the plan is already compiled, yet EXPLAIN must still
     report every canonical stage, with the compile stage attributed to
     the cache. *)
  let reply = Server.handle_line t (Printf.sprintf "EXPLAIN g '%s'" src) in
  check_bool "explain ok" true (P.is_ok reply);
  List.iter
    (fun stage ->
      check_bool (Printf.sprintf "reports stage %s" stage) true
        (contains ~needle:(Printf.sprintf "\"stage\":\"%s\"" stage) reply))
    [ "parse"; "normalize"; "cache_lookup"; "compile"; "execute"; "materialize"; "other" ];
  check_bool "plan cache attribution" true (contains ~needle:"\"plan_cache\":\"hit\"" reply);
  check_bool "compile marked cached" true (contains ~needle:"\"cached\":true" reply);
  check_bool "no values payload" false (contains ~needle:"\"values\"" reply);
  (* Stage timings must sum to the reported total exactly (the synthetic
     "other" bucket absorbs unattributed time). *)
  (match (float_after "total_ms" reply, floats_after "ms" reply) with
  | Some total, stage_ms ->
      check_int "one ms per stage" 7 (List.length stage_ms);
      let sum = List.fold_left ( +. ) 0.0 stage_ms in
      check_bool
        (Printf.sprintf "stages sum (%g) = total (%g)" sum total)
        true
        (Float.abs (sum -. total) < 1e-6)
  | _ -> Alcotest.fail "missing total_ms or stage ms fields");
  (* A cold plan reports a real compile stage. *)
  let cold = Server.handle_line t "EXPLAIN g 'agg_max{x2}([1] | E(x1,x2))'" in
  check_bool "cold explain ok" true (P.is_ok cold);
  check_bool "cold explain is a plan miss" true (contains ~needle:"\"plan_cache\":\"miss\"" cold);
  check_bool "cold compile not cached" true (contains ~needle:"\"cached\":false" cold)

let test_handle_line_trace_option () =
  let t = make_server () in
  let reply = Server.handle_line t "QUERY petersen 'agg_sum{x2}([1] | E(x1,x2))' TRACE" in
  check_bool "traced query ok" true (P.is_ok reply);
  check_bool "trace attached" true (contains ~needle:"\"trace\":[" reply);
  List.iter
    (fun span ->
      check_bool (Printf.sprintf "trace has span %s" span) true
        (contains ~needle:(Printf.sprintf "\"name\":\"%s\"" span) reply))
    [ "request"; "parse"; "normalize"; "cache_lookup"; "compile"; "execute"; "materialize" ];
  (* Non-object replies are wrapped so the trace has somewhere to go. *)
  let ping = Server.handle_line t "PING TRACE" in
  check_bool "traced ping ok" true (P.is_ok ping);
  check_bool "ping value wrapped" true (contains ~needle:"\"value\":\"pong\"" ping);
  check_bool "ping trace attached" true (contains ~needle:"\"trace\":[" ping);
  (* Untraced requests carry no trace field. *)
  let bare = Server.handle_line t "PING" in
  check_bool "untraced ping has no trace" false (contains ~needle:"\"trace\"" bare)

let test_protocol_version_reporting () =
  let t = make_server () in
  let hello = Server.handle_line t "HELLO" in
  let version = Server.handle_line t "VERSION" in
  let stats = Server.handle_line t "STATS" in
  let needle = Printf.sprintf "\"protocol_version\":%d" P.protocol_version in
  check_bool "hello reports protocol" true (contains ~needle hello);
  check_bool "version reports protocol" true (contains ~needle version);
  check_bool "stats reports protocol" true (contains ~needle stats);
  (* STATS also carries the cumulative per-stage histograms: the two
     requests before it each ran under a "request" span. *)
  check_bool "stats has stages" true (contains ~needle:"\"stages\":{" stats);
  check_bool "stats counts request stage" true (contains ~needle:"\"request\":{\"count\":" stats)

let test_metrics_ring_wrap () =
  let m = Glql_server.Metrics.create () in
  let w = Glql_server.Metrics.window in
  (* Fill the ring exactly: latencies 1..w ns. *)
  for i = 1 to w do
    Glql_server.Metrics.record m ~command:"X" ~ok:true ~latency_ns:(Int64.of_int i)
  done;
  let p50_full = Glql_server.Metrics.percentile_ms m 50.0 in
  check_bool "p50 at exact fill" true
    (Float.abs (p50_full -. (float_of_int (w / 2) /. 1e6)) < 1e-9);
  (* Wrap halfway: the oldest half is overwritten by a large constant, so
     the window now holds w/2 small values (w/2+1 .. w) and w/2 big ones. *)
  for _ = 1 to w / 2 do
    Glql_server.Metrics.record m ~command:"X" ~ok:true ~latency_ns:1_000_000_000L
  done;
  let p50 = Glql_server.Metrics.percentile_ms m 50.0 in
  let p99 = Glql_server.Metrics.percentile_ms m 99.0 in
  check_bool "p50 after wrap is the largest small value" true
    (Float.abs (p50 -. (float_of_int w /. 1e6)) < 1e-9);
  check_bool "p99 after wrap lands in the overwritten half" true
    (Float.abs (p99 -. 1000.0) < 1e-9)

(* --- persistence ---------------------------------------------------------- *)

let test_registry_canonical_spec () =
  Alcotest.(check string) "whitespace collapsed" "cycle3+path4"
    (Registry.canonical_spec "  cycle3 +  path4 ");
  Alcotest.(check string) "already canonical" "petersen" (Registry.canonical_spec "petersen");
  (* The fallback path caches all spellings of one spec under one entry,
     sharing one generation (hence one set of colouring-cache keys). *)
  let r = Registry.create () in
  let gen name =
    match Registry.find_entry r name with
    | Ok (_, gen) -> gen
    | Error e -> Alcotest.failf "find_entry %s failed: %s" name e
  in
  let g0 = gen "cycle3+path4" in
  check_int "one entry for the spec" 1 (Registry.n_graphs r);
  check_int "spaced spelling shares the generation" g0 (gen "cycle3 + path4");
  check_int "still one entry" 1 (Registry.n_graphs r)

let with_temp_snapshot f =
  let path = Filename.temp_file "glql_server_test" ".glqs" in
  Sys.remove path;
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let test_save_restore_roundtrip () =
  with_temp_snapshot @@ fun path ->
  let t = make_server () in
  ignore (Server.handle_line t "LOAD g petersen");
  let src = "agg_sum{x2}([1] | E(x1,x2))" in
  let warm_query = Server.handle_line t (Printf.sprintf "QUERY g '%s'" src) in
  let warm_wl = Server.handle_line t "WL g" in
  ignore (Server.handle_line t "KWL g 2");
  check_bool "SAVE without a path is an error (no --snapshot)" false
    (P.is_ok (Server.handle_line t "SAVE"));
  let save = Server.handle_line t (Printf.sprintf "SAVE %s" path) in
  check_bool "SAVE ok" true (P.is_ok save);
  check_bool "SAVE reports one graph" true (contains ~needle:"\"graphs\":1" save);
  check_bool "SAVE reports two colorings" true (contains ~needle:"\"colorings\":2" save);
  check_bool "SAVE reports one plan" true (contains ~needle:"\"plans\":1" save);
  (* A fresh server restored from the file answers warm: same values,
     same signature, plan and colouring caches hit, no recomputation. *)
  let t2 = make_server () in
  let cold_stats = Server.handle_line t2 "STATS" in
  check_bool "cold server reports restored:null" true
    (contains ~needle:"\"restored\":null" cold_stats);
  let restore = Server.handle_line t2 (Printf.sprintf "RESTORE %s" path) in
  check_bool "RESTORE ok" true (P.is_ok restore);
  let query2 = Server.handle_line t2 (Printf.sprintf "QUERY g '%s'" src) in
  check_bool "restored query is a plan hit" true
    (contains ~needle:"\"plan_cache\":\"hit\"" query2);
  let wl2 = Server.handle_line t2 "WL g" in
  check_bool "restored wl is a coloring hit" true
    (contains ~needle:"\"coloring_cache\":\"hit\"" wl2);
  check_bool "restored kwl is a coloring hit" true
    (contains ~needle:"\"coloring_cache\":\"hit\"" (Server.handle_line t2 "KWL g 2"));
  let values_of reply =
    match String.index_opt reply '{' with
    | Some i ->
        let tail = String.sub reply i (String.length reply - i) in
        let key = "\"values\":" in
        let rec find j =
          if j + String.length key > String.length tail then ""
          else if String.sub tail j (String.length key) = key then
            String.sub tail j (String.length tail - j)
          else find (j + 1)
        in
        find 0
    | None -> ""
  in
  Alcotest.(check string) "identical query values" (values_of warm_query) (values_of query2);
  let sig_of reply =
    match float_after "n" reply with
    | _ -> (
        let key = "\"signature\":\"" in
        let kl = String.length key and n = String.length reply in
        let rec find i =
          if i + kl > n then ""
          else if String.sub reply i kl = key then
            let stop = String.index_from reply (i + kl) '"' in
            String.sub reply (i + kl) (stop - i - kl)
          else find (i + 1)
        in
        find 0)
  in
  Alcotest.(check string) "identical wl signature" (sig_of warm_wl) (sig_of wl2);
  let stats = Server.handle_line t2 "STATS" in
  check_bool "stats reports the restored section" true (contains ~needle:"\"restored\":{" stats);
  check_bool "restored section names the file" true (contains ~needle:path stats)

let test_restore_malformed_leaves_state () =
  with_temp_snapshot @@ fun path ->
  let t = make_server () in
  ignore (Server.handle_line t "LOAD keepme petersen");
  ignore (Server.handle_line t "WL keepme");
  let cache_before = Cache.stats (Server.caches t) in
  let try_restore bytes =
    let oc = open_out_bin path in
    output_string oc bytes;
    close_out oc;
    Server.handle_line t (Printf.sprintf "RESTORE %s" path)
  in
  List.iter
    (fun (label, bytes) ->
      let reply = try_restore bytes in
      check_bool (label ^ " rejected") false (P.is_ok reply);
      (* Registry and caches are untouched by a failed restore. *)
      let stats = Server.handle_line t "STATS" in
      check_bool (label ^ ": graph count unchanged") true
        (contains ~needle:"\"graphs_registered\":1" stats);
      check_int
        (label ^ ": coloring entries unchanged")
        (List.assoc "coloring_entries" cache_before)
        (List.assoc "coloring_entries" (Cache.stats (Server.caches t)));
      check_bool (label ^ ": still cold") true (contains ~needle:"\"restored\":null" stats))
    [
      ("empty file", "");
      ("bad magic", "JUNKJUNKJUNKJUNK");
      ("truncated container", String.sub (Glql_store.Container.to_string [ ("META", "x") ]) 0 10);
    ];
  check_bool "missing file rejected" false
    (P.is_ok (Server.handle_line t "RESTORE /nonexistent/snap.glqs"))

let test_restore_then_reload_stays_fresh () =
  with_temp_snapshot @@ fun path ->
  (* Colourings restored from a snapshot must still be invalidated by a
     LOAD that replaces the graph: restore rekeys under fresh
     generations, and a re-LOAD bumps past them. *)
  let t = make_server () in
  ignore (Server.handle_line t "LOAD g cycle5");
  ignore (Server.handle_line t "WL g");
  ignore (Server.handle_line t (Printf.sprintf "SAVE %s" path));
  let t2 = make_server () in
  ignore (Server.handle_line t2 (Printf.sprintf "RESTORE %s" path));
  check_bool "restored coloring serves warm" true
    (contains ~needle:"\"coloring_cache\":\"hit\"" (Server.handle_line t2 "WL g"));
  ignore (Server.handle_line t2 "LOAD g path4");
  let after = Server.handle_line t2 "WL g" in
  check_bool "reload after restore recomputes" true
    (contains ~needle:"\"coloring_cache\":\"miss\"" after);
  check_bool "reload after restore serves the new graph" true (contains ~needle:"\"n\":4" after)

let test_cache_clear_resets_entries () =
  let t = make_server () in
  ignore (Server.handle_line t "QUERY petersen 'agg_sum{x2}([1] | E(x1,x2))'");
  ignore (Server.handle_line t "WL petersen");
  let before = Cache.stats (Server.caches t) in
  check_int "one plan cached" 1 (List.assoc "plan_entries" before);
  check_int "one coloring cached" 1 (List.assoc "coloring_entries" before);
  Cache.clear (Server.caches t);
  let after = Cache.stats (Server.caches t) in
  check_int "plans cleared" 0 (List.assoc "plan_entries" after);
  check_int "colorings cleared" 0 (List.assoc "coloring_entries" after);
  check_int "miss counters survive" 1 (List.assoc "plan_misses" after)

(* --- governance: error codes, deadlines, limits -------------------------- *)

module Line_buf = Glql_server.Line_buf
module Clock = Glql_util.Clock

let code_of reply =
  (* Replies look like: ERR {"code":"ERR_X","message":"..."} *)
  let marker = "\"code\":\"" in
  let ml = String.length marker in
  let rec find i =
    if i + ml > String.length reply then None
    else if String.sub reply i ml = marker then
      let j = String.index_from reply (i + ml) '"' in
      Some (String.sub reply (i + ml) (j - i - ml))
    else find (i + 1)
  in
  find 0

let test_error_codes () =
  let t = make_server () in
  let expect line code =
    let reply = Server.handle_line t line in
    check_bool (Printf.sprintf "ERR reply for %S" line) false (P.is_ok reply);
    Alcotest.(check (option string)) (Printf.sprintf "code for %S" line) (Some code)
      (code_of reply)
  in
  expect "garbage request" "ERR_PARSE";
  expect "QUERY nosuchgraph 'agg_sum{x2}([1] | E(x1,x2))'" "ERR_UNKNOWN_GRAPH";
  expect "QUERY petersen 'agg_sum{x2}(['" "ERR_QUERY";
  expect "LOAD g nosuchgenerator" "ERR_BAD_SPEC";
  expect "KWL petersen 7" "ERR_BAD_ARG";
  expect "HOM petersen 99" "ERR_BAD_ARG";
  expect "RESTORE /nonexistent/snap.glqs" "ERR_SNAPSHOT";
  (* The overflow-proof cell guard now carries its own code. *)
  let big =
    "agg_sum{x10}([1] | product(E(x1,x2), product(E(x3,x4), product(E(x5,x6), \
     product(E(x7,x8), E(x9,x10))))))"
  in
  expect (Printf.sprintf "QUERY cycle150 '%s'" big) "ERR_LIMIT_CELLS";
  (* OK replies are unchanged by the structured-error work. *)
  check_bool "ok reply intact" true (P.is_ok (Server.handle_line t "PING"))

let test_hom_cost_guard () =
  let t = make_server () in
  (* cycle5000 at pattern size 9: ~95 patterns x 9 vertices x (n + 2m) =
     95 * 9 * 15000 = 1.28e7 cells of DP work per the guard's estimate —
     over the 4M default budget, rejected before any evaluation. *)
  let reply = Server.handle_line t "HOM cycle5000 9" in
  check_bool "oversized HOM rejected" false (P.is_ok reply);
  Alcotest.(check (option string)) "cost guard code" (Some "ERR_LIMIT_COST") (code_of reply);
  (* Small graphs still pass the guard and evaluate. *)
  check_bool "petersen HOM still ok" true (P.is_ok (Server.handle_line t "HOM petersen 9"))

let test_deadline_cancels_kernels () =
  (* A timeout far below the kernels' runtime: the cooperative checks
     inside WL / k-WL / HOM must abort mid-computation with ERR_DEADLINE
     (the pre-stage checks may also fire; either way the code is the
     deadline code and the reply is prompt). *)
  let t =
    Server.create
      { Server.default_config with Server.socket_path = None; request_timeout_s = 0.003 }
  in
  let expect_deadline line =
    let reply = Server.handle_line t line in
    check_bool (Printf.sprintf "cancelled: %s" line) false (P.is_ok reply);
    Alcotest.(check (option string)) (Printf.sprintf "deadline code for %s" line)
      (Some "ERR_DEADLINE") (code_of reply)
  in
  (* 3-WL on grid6x6 walks 46656 tuples per round — hundreds of ms. *)
  expect_deadline "KWL grid6x6 3";
  (* Colour refinement on path5000 stabilises only after ~2500 rounds. *)
  expect_deadline "WL path5000";
  (* grid30x30 at size 9 passes the cost guard (~3.7M < 4M) but the
     per-pattern deadline check fires during profile evaluation. *)
  expect_deadline "HOM grid30x30 9";
  (* The same server still answers instant requests fine. *)
  check_bool "cheap request unaffected" true (P.is_ok (Server.handle_line t "PING"));
  check_bool "small graph unaffected" true (P.is_ok (Server.handle_line t "WL petersen"))

let test_featurize_cell_budget_preempts () =
  (* The cell budget is enforced column by column, before each block is
     materialized: a vertex-mode wl one-hot (width = stable class count,
     near n on a colour-diverse graph) must be rejected before the
     O(n·width) allocation. The reported dimensions pin the early trip:
     the guard fires AT the wl column (accumulated width deg+wl), not
     after building the whole recipe (which would also count label). *)
  let t =
    Server.create
      { Server.default_config with Server.socket_path = None; max_table_cells = 20 }
  in
  check_bool "load" true (P.is_ok (Server.handle_line t "LOAD g path10"));
  let wl = Server.handle_line t "WL g" in
  (* The vertex-mode wl one-hot is indexed by raw color id, so its width
     is 1 + max color id; recover that from the WL reply's colors list. *)
  let max_color =
    let marker = "\"colors\":[" in
    match String.index_opt wl '[' with
    | None -> Alcotest.fail "no colors list in the WL reply"
    | Some _ ->
        let start =
          let rec find i =
            if i + String.length marker > String.length wl then
              Alcotest.fail "no colors list in the WL reply"
            else if String.sub wl i (String.length marker) = marker then i + String.length marker
            else find (i + 1)
          in
          find 0
        in
        let stop = String.index_from wl start ']' in
        String.sub wl start (stop - start) |> String.split_on_char ','
        |> List.fold_left (fun acc s -> max acc (int_of_string (String.trim s))) (-1)
  in
  check_bool "path10 is colour-diverse" true (max_color > 0);
  let wl_width = 1 + max_color in
  let reply = Server.handle_line t "FEATURIZE g 'deg;wl;label'" in
  check_bool "over-budget recipe rejected" false (P.is_ok reply);
  Alcotest.(check (option string)) "cell-guard code" (Some "ERR_LIMIT_CELLS") (code_of reply);
  check_bool "guard fired at the wl column, before the rest of the recipe" true
    (contains ~needle:(Printf.sprintf "feature matrix 10x%d " (1 + wl_width)) reply);
  (* An in-budget recipe on the same server still evaluates. *)
  check_bool "small recipe still fine" true (P.is_ok (Server.handle_line t "FEATURIZE g 'deg'"))

let test_train_honours_deadline () =
  (* The per-request timeout reaches inside the fit's epoch loop: TRAIN
     with a huge EPOCHS over many rows aborts with ERR_DEADLINE instead
     of blocking the (single-threaded) worker until the fit completes,
     and the aborted fit leaves no half-registered model. *)
  let t =
    Server.create
      { Server.default_config with Server.socket_path = None; request_timeout_s = 0.05 }
  in
  check_bool "load" true (P.is_ok (Server.handle_line t "LOAD g path2000"));
  let reply =
    Server.handle_line t
      "TRAIN slow ON g WITH 'deg' TARGET 'agg_sum{x2}([1] | E(x1,x2))' EPOCHS 10000"
  in
  check_bool "TRAIN cancelled" false (P.is_ok reply);
  Alcotest.(check (option string)) "deadline code" (Some "ERR_DEADLINE") (code_of reply);
  check_bool "no half-registered model" false
    (contains ~needle:"\"name\":\"slow\"" (Server.handle_line t "MODELS"));
  check_bool "server still serving" true (P.is_ok (Server.handle_line t "PING"))

let test_batch_coalescing () =
  let t = make_server () in
  check_bool "load g" true (P.is_ok (Server.handle_line t "LOAD g petersen"));
  (* One select-loop batch: two WL, two KWL, two HOM requests on the
     same graph. The planner must run one refinement / one k-WL run /
     one profile pass and answer every request from it. *)
  let replies = Server.handle_lines t [| "WL g"; "WL g 1"; "KWL g 2"; "KWL g 2"; "HOM g 4"; "HOM g 3" |] in
  Array.iteri
    (fun i r -> check_bool (Printf.sprintf "batched reply %d ok" i) true (P.is_ok r))
    replies;
  check_bool "first WL served from the shared pass" true
    (contains ~needle:"\"coloring_cache\":\"hit\"" replies.(0));
  check_bool "second WL served from the shared pass" true
    (contains ~needle:"\"coloring_cache\":\"hit\"" replies.(1));
  let stats = Server.handle_line t "STATS" in
  check_bool "six requests coalesced" true (contains ~needle:"\"batch_coalesced\":6" stats);
  (* Exactly one pass of each kernel ran for the whole batch: the
     cumulative stage histograms saw a single wl.refine / kwl.refine /
     hom.profile span. *)
  check_bool "one WL refinement" true (contains ~needle:"\"wl.refine\":{\"count\":1," stats);
  check_bool "one k-WL refinement" true (contains ~needle:"\"kwl.refine\":{\"count\":1," stats);
  check_bool "one hom profile" true (contains ~needle:"\"hom.profile\":{\"count\":1," stats);
  check_bool "coalesce pass traced" true (contains ~needle:"\"batch.coalesce\"" stats);
  (* A singleton group is not prewarmed: the solo request computes and
     reports its own cache miss exactly as before batching existed. *)
  check_bool "load h" true (P.is_ok (Server.handle_line t "LOAD h cycle5"));
  let solo = Server.handle_lines t [| "WL h" |] in
  check_bool "singleton batch is a plain miss" true
    (contains ~needle:"\"coloring_cache\":\"miss\"" solo.(0));
  let stats2 = Server.handle_line t "STATS" in
  check_bool "coalesced counter unchanged by singleton" true
    (contains ~needle:"\"batch_coalesced\":6" stats2);
  (* Batched replies carry the same values as solo ones (WL petersen is
     CR-homogeneous; the profile of size <= 3 is a prefix of size 4). *)
  check_bool "batched WL classes" true (contains ~needle:"\"classes\":1" replies.(0));
  let solo_hom = Server.handle_line t "HOM g 3" in
  let profile_of r =
    match String.index_opt r '[' with
    | Some i -> String.sub r i (String.length r - i)
    | None -> r
  in
  check_bool "shared-prefix HOM equals solo HOM" true
    (profile_of solo_hom = profile_of replies.(5))

(* --- MUTATE through the pipeline and the seeded colouring cache ---------- *)

let test_handle_line_mutate () =
  let t = make_server () in
  ignore (Server.handle_line t "LOAD g cycle5");
  check_bool "baseline wl homogeneous" true
    (contains ~needle:"\"classes\":1" (Server.handle_line t "WL g"));
  let reply = Server.handle_line t "MUTATE g ADD_EDGES 0 2 DEL_EDGES 1 3" in
  check_bool "mutate ok" true (P.is_ok reply);
  check_bool "applied counts" true
    (contains ~needle:"\"applied\":{\"add_edges\":1,\"del_edges\":0,\"set_labels\":0}" reply);
  check_bool "edges updated" true (contains ~needle:"\"edges\":6" reply);
  check_bool "rejected op reported with index" true
    (contains ~needle:"\"index\":1" reply && contains ~needle:"\"op\":\"DEL_EDGE\"" reply);
  check_bool "rejected op carries a v4 code" true
    (contains ~needle:"\"code\":\"ERR_BAD_ARG\"" reply);
  (* Reads recompute on the new generation: the chord splits cycle5 into
     three orbits. *)
  let wl = Server.handle_line t "WL g" in
  check_bool "post-mutate wl recomputed" true
    (contains ~needle:"\"coloring_cache\":\"miss\"" wl);
  check_bool "post-mutate wl sees the chord" true (contains ~needle:"\"classes\":3" wl);
  (* An all-rejected batch keeps the generation: the colouring stays warm. *)
  let noop = Server.handle_line t "MUTATE g ADD_EDGES 0 2" in
  check_bool "all-rejected batch is still an OK reply" true (P.is_ok noop);
  check_bool "all-rejected batch reports the rejection" true
    (contains ~needle:"\"already present\"" noop || contains ~needle:"already present" noop);
  check_bool "generation kept: wl still warm" true
    (contains ~needle:"\"coloring_cache\":\"hit\"" (Server.handle_line t "WL g"));
  (* MUTATE never builds specs. *)
  let unknown = Server.handle_line t "MUTATE nosuchgraph ADD_EDGES 0 1" in
  check_bool "unknown graph rejected" false (P.is_ok unknown);
  Alcotest.(check (option string)) "unknown graph code" (Some "ERR_UNKNOWN_GRAPH")
    (code_of unknown)

let test_handle_line_mutate_incremental () =
  (* A chord on a 100-cycle changes the colouring globally — new colour
     classes ripple outward one hop per round — so the frontier outgrows
     the default cap and the seed path must *fall back* to a full
     refinement.  That is the correct outcome here: the counters must say
     fallback (not incremental), the seed must still be consumed, and the
     reply must match a cold refinement bit-for-bit.  The happy path,
     where the frontier stays small, is covered at the Cache level by
     [test_cache_seed_lifecycle] on a sparse random graph. *)
  let t = make_server () in
  ignore (Server.handle_line t "LOAD g cycle100");
  ignore (Server.handle_line t "WL g");
  check_bool "mutate ok" true (P.is_ok (Server.handle_line t "MUTATE g ADD_EDGES 0 2"));
  let wl = Server.handle_line t "WL g" in
  check_bool "post-mutate wl is a miss (reply bytes are v4)" true
    (contains ~needle:"\"coloring_cache\":\"miss\"" wl);
  let stats = Server.handle_line t "STATS" in
  check_bool "global recolouring fell back to a full refinement" true
    (contains ~needle:"\"incremental_fallbacks\":1" stats);
  check_bool "not miscounted as incremental" true
    (contains ~needle:"\"incremental_recolors\":0" stats);
  check_bool "seed consumed" true (contains ~needle:"\"seed_entries\":0" stats);
  (* Fallback or not, the served colouring matches a cold refinement. *)
  let g = match Registry.graph_of_spec "cycle100" with Ok g -> g | Error e -> failwith e in
  let g' = Graph.mutate g ~add_edges:[ (0, 2) ] ~del_edges:[] ~set_labels:[] in
  let cold = Cr.run g' in
  check_bool "classes match cold refinement" true
    (contains
       ~needle:(Printf.sprintf "\"classes\":%d" (Cr.n_classes cold))
       wl)

let test_cache_seed_lifecycle () =
  (* A sparse random graph is near-discrete after a couple of WL rounds,
     so a two-edge mutation keeps the recolouring frontier well under the
     default cap — this is the happy path where the seed actually pays:
     the counters must say incremental, never fallback. *)
  let g = Generators.erdos_renyi (Glql_util.Rng.create 71) ~n:100 ~p:0.06 in
  let g' = Graph.mutate g ~add_edges:[ (0, 2) ] ~del_edges:[] ~set_labels:[] in
  let cache = Cache.create ~plan_capacity:4 ~coloring_capacity:8 () in
  let _, h0 = Cache.cr cache ~graph_name:"g" ~gen:0 g in
  check_bool "cold compute is a miss" true (h0 = `Miss);
  Cache.note_mutation cache ~graph_name:"g" ~old_gen:0 ~gen:1 ~touched_adj:[ 0; 2 ]
    ~touched_lab:[];
  let s = Cache.stats cache in
  check_int "old entry became the seed" 1 (List.assoc "coloring_entries" s);
  check_int "one seed" 1 (List.assoc "seed_entries" s);
  check_bool "seed bytes counted" true
    (List.assoc "seed_bytes" s > 0 && List.assoc "seed_bytes" s <= List.assoc "coloring_bytes" s);
  (* Stacked mutations merge into the existing seed instead of dropping it. *)
  let g'' = Graph.mutate g' ~add_edges:[ (5, 50) ] ~del_edges:[] ~set_labels:[] in
  Cache.note_mutation cache ~graph_name:"g" ~old_gen:1 ~gen:2 ~touched_adj:[ 5; 50 ]
    ~touched_lab:[];
  check_int "still one seed after stacking" 1 (List.assoc "seed_entries" (Cache.stats cache));
  let r, h1 = Cache.cr cache ~graph_name:"g" ~gen:2 g'' in
  check_bool "seeded compute still reports a miss" true (h1 = `Miss);
  let s2 = Cache.stats cache in
  check_int "seed consumed" 0 (List.assoc "seed_entries" s2);
  check_int "incremental recolor counted" 1 (List.assoc "incremental_recolors" s2);
  check_int "no fallback" 0 (List.assoc "incremental_fallbacks" s2);
  (* Bit-identical to a cold run across the stacked mutations. *)
  let cold = Cr.run g'' in
  check_bool "identical history" true (Cr.history r = Cr.history cold);
  check_bool "identical stable colours" true (Cr.stable_colors r = Cr.stable_colors cold)

let test_cache_seed_evicted_first () =
  (* Measure one colouring's cost, then give the cache room for about two:
     the cold-inserted seed must be the first thing evicted, never a live
     entry. *)
  let graph name = match Registry.graph_of_spec name with Ok g -> g | Error e -> failwith e in
  let probe = Cache.create ~plan_capacity:4 ~coloring_capacity:8 () in
  ignore (Cache.cr probe ~graph_name:"g" ~gen:0 (graph "cycle100"));
  let one = List.assoc "coloring_bytes" (Cache.stats probe) in
  let cache =
    Cache.create ~coloring_bytes:((2 * one) + (one / 2)) ~plan_capacity:4 ~coloring_capacity:8 ()
  in
  ignore (Cache.cr cache ~graph_name:"g" ~gen:0 (graph "cycle100"));
  Cache.note_mutation cache ~graph_name:"g" ~old_gen:0 ~gen:1 ~touched_adj:[ 0; 2 ]
    ~touched_lab:[];
  check_int "seed live under budget" 1 (List.assoc "seed_entries" (Cache.stats cache));
  ignore (Cache.cr cache ~graph_name:"h" ~gen:0 (graph "cycle101"));
  ignore (Cache.cr cache ~graph_name:"i" ~gen:0 (graph "cycle102"));
  let s = Cache.stats cache in
  check_int "seed evicted first under pressure" 0 (List.assoc "seed_entries" s);
  check_bool "eviction counted" true (List.assoc "coloring_evictions" s >= 1);
  (* Both live colourings survived the seed's eviction. *)
  check_bool "live entry h survived" true
    (snd (Cache.cr cache ~graph_name:"h" ~gen:0 (graph "cycle101")) = `Hit);
  check_bool "live entry i survived" true
    (snd (Cache.cr cache ~graph_name:"i" ~gen:0 (graph "cycle102")) = `Hit);
  (* With the seed gone, the next generation recolours cold: counted as
     neither incremental nor fallback. *)
  let g' = Graph.mutate (graph "cycle100") ~add_edges:[ (0, 2) ] ~del_edges:[] ~set_labels:[] in
  ignore (Cache.cr cache ~graph_name:"g" ~gen:1 g');
  let s2 = Cache.stats cache in
  check_int "no incremental without a seed" 0 (List.assoc "incremental_recolors" s2);
  check_int "no fallback without a seed" 0 (List.assoc "incremental_fallbacks" s2)

let prop_parse_request_total =
  qtest ~count:500 "parse_request never raises" QCheck.(string_of_size Gen.(0 -- 200))
    (fun s ->
      match P.parse_request s with
      | Ok _ | Error _ -> true
      | exception _ -> false)

(* --- line framing --------------------------------------------------------- *)

let feed_ok lb s =
  match Line_buf.feed_string lb s with
  | Ok lines -> lines
  | Error _ -> Alcotest.fail "unexpected Line_buf error"

let test_line_buf_framing () =
  let lb = Line_buf.create () in
  Alcotest.(check (list string)) "partial line held" [] (feed_ok lb "PI");
  check_int "pending counted" 2 (Line_buf.pending_bytes lb);
  Alcotest.(check (list string)) "completed on newline" [ "PING" ] (feed_ok lb "NG\n");
  check_int "pending drained" 0 (Line_buf.pending_bytes lb);
  Alcotest.(check (list string)) "many lines one chunk" [ "a"; "b"; "c" ]
    (feed_ok lb "a\nb\nc\n");
  Alcotest.(check (list string)) "crlf stripped" [ "HELLO" ] (feed_ok lb "HELLO\r\n");
  Alcotest.(check (list string)) "tail kept after lines" [ "x" ] (feed_ok lb "x\nQUE");
  Alcotest.(check (list string)) "tail completes later" [ "QUERY" ] (feed_ok lb "RY\n");
  Alcotest.(check (list string)) "empty lines surface" [ ""; "" ] (feed_ok lb "\n\n")

let test_line_buf_limits () =
  (* Line limit: a complete line over the cap errors even when it arrives
     in one gulp alongside the newline. *)
  let lb = Line_buf.create ~max_line_bytes:8 () in
  check_bool "long line rejected" true
    (match Line_buf.feed_string lb "0123456789ABCDEF\n" with
    | Error (Line_buf.Line_too_long 8) -> true
    | _ -> false);
  (* Poisoned: even a harmless feed keeps failing. *)
  check_bool "poisoned after error" true
    (match Line_buf.feed_string lb "ok\n" with Error _ -> true | Ok _ -> false);
  (* Short lines under the same cap are fine. *)
  let lb2 = Line_buf.create ~max_line_bytes:8 () in
  Alcotest.(check (list string)) "short lines pass" [ "PING"; "STATS" ]
    (feed_ok lb2 "PING\nSTATS\n");
  (* Buffer limit: newline-less flood trips Buffer_overflow. *)
  let lb3 = Line_buf.create ~max_buf_bytes:16 () in
  check_bool "flood rejected" true
    (match Line_buf.feed_string lb3 (String.make 64 'a') with
    | Error (Line_buf.Buffer_overflow 16) -> true
    | _ -> false);
  (* A pipelined chunk bigger than max_buf_bytes is fine as long as the
     unconsumed tail stays under the cap — limits meter buffered bytes,
     not throughput. *)
  let lb4 = Line_buf.create ~max_buf_bytes:16 () in
  let payload = String.concat "" (List.init 10 (fun i -> Printf.sprintf "line%d\n" i)) in
  check_int "big pipelined chunk ok" 10 (List.length (feed_ok lb4 payload))

let prop_line_buf_reassembly =
  (* However a '\n'-terminated payload is chunked, the reassembled lines
     are exactly the split of the payload. *)
  qtest ~count:200 "line_buf chunking invariant"
    QCheck.(
      pair
        (list_of_size Gen.(0 -- 8) (string_of_size Gen.(0 -- 12)))
        (list_of_size Gen.(1 -- 12) (int_range 1 7)))
    (fun (raw_lines, chunk_sizes) ->
      let lines =
        List.map
          (String.map (fun c -> if c = '\n' || c = '\r' then '.' else c))
          raw_lines
      in
      let payload = String.concat "" (List.map (fun l -> l ^ "\n") lines) in
      let lb = Line_buf.create () in
      let out = ref [] in
      let pos = ref 0 in
      let sizes = ref chunk_sizes in
      while !pos < String.length payload do
        let size =
          match !sizes with
          | s :: rest ->
              sizes := rest @ [ s ];
              s
          | [] -> 1
        in
        let len = min size (String.length payload - !pos) in
        (match Line_buf.feed_string lb (String.sub payload !pos len) with
        | Ok ls -> out := !out @ ls
        | Error _ -> Alcotest.fail "limits disabled: no error possible");
        pos := !pos + len
      done;
      !out = lines && Line_buf.pending_bytes lb = 0)

(* --- model serving (protocol v6) ----------------------------------------- *)

let test_parse_model_requests () =
  let req line = match P.parse_request line with Ok { P.req; _ } -> Some req | Error _ -> None in
  (match req "FEATURIZE g 'deg;wl'" with
  | Some (P.Featurize ("g", "deg;wl", P.Fm_vertex)) -> ()
  | _ -> Alcotest.fail "FEATURIZE defaults to vertex mode");
  (match req "FEATURIZE g 'deg' GRAPH" with
  | Some (P.Featurize ("g", "deg", P.Fm_graph)) -> ()
  | _ -> Alcotest.fail "FEATURIZE accepts a mode token");
  (match req "PREDICT m g 1 2" with
  | Some (P.Predict ("m", "g", [ 1; 2 ])) -> ()
  | _ -> Alcotest.fail "PREDICT parses vertices");
  check_bool "MODELS parses" true (req "MODELS" = Some P.Models);
  (match req "TRAIN m ON a,b WITH 'deg' TARGET '[1]' MODE GRAPH EPOCHS 5 LR 0.1 SEED 2 SPLIT 0.5" with
  | Some (P.Train s) ->
      check_bool "TRAIN graphs" true (s.P.t_graphs = [ "a"; "b" ]);
      check_bool "TRAIN recipe" true (s.P.t_recipe = "deg");
      check_bool "TRAIN target" true (s.P.t_target = "[1]");
      check_bool "TRAIN mode" true (s.P.t_mode = Some P.Fm_graph);
      check_bool "TRAIN options" true
        (s.P.t_epochs = Some 5 && s.P.t_lr = Some 0.1 && s.P.t_seed = Some 2
       && s.P.t_split = Some 0.5)
  | _ -> Alcotest.fail "TRAIN full grammar");
  check_bool "TRAIN without TARGET rejected" true (req "TRAIN m ON g WITH 'deg'" = None);
  check_bool "TRAIN without ON rejected" true (req "TRAIN m WITH 'deg' TARGET '[1]'" = None);
  check_bool "TRAIN bad EPOCHS rejected" true
    (req "TRAIN m ON g WITH 'deg' TARGET '[1]' EPOCHS 0" = None);
  check_bool "TRAIN bad SPLIT rejected" true
    (req "TRAIN m ON g WITH 'deg' TARGET '[1]' SPLIT 1.5" = None);
  check_bool "PREDICT bad vertex rejected" true (req "PREDICT m g notanint" = None)

let test_featurize_requests () =
  let t = make_server () in
  ignore (Server.handle_line t "LOAD g petersen");
  let feat = Server.handle_line t "FEATURIZE g 'deg;wl;hom3;label'" in
  check_bool "FEATURIZE ok" true (P.is_ok feat);
  check_bool "FEATURIZE row per vertex" true (contains ~needle:"\"rows\":10" feat);
  check_bool "FEATURIZE reports a digest" true (contains ~needle:"\"digest\":\"" feat);
  check_bool "FEATURIZE lists columns" true (contains ~needle:"\"name\":\"hom3\"" feat);
  let digest_of reply =
    let key = "\"digest\":\"" in
    let kl = String.length key and n = String.length reply in
    let rec find i =
      if i + kl > n then ""
      else if String.sub reply i kl = key then
        let stop = String.index_from reply (i + kl) '"' in
        String.sub reply (i + kl) (stop - i - kl)
      else find (i + 1)
    in
    find 0
  in
  (* Same request again: identical matrix (digest), now through the warm
     colouring cache. *)
  let again = Server.handle_line t "FEATURIZE g 'deg;wl;hom3;label'" in
  Alcotest.(check string) "digest deterministic" (digest_of feat) (digest_of again);
  check_bool "second featurize hits the coloring cache" true
    (contains ~needle:"\"cache_hits\":" again && not (contains ~needle:"\"cache_hits\":0" again));
  (* Graph mode: one summary row, fixed-width histograms legal here. *)
  let gfeat = Server.handle_line t "FEATURIZE g 'wl;kwl2' GRAPH" in
  check_bool "graph-mode FEATURIZE ok" true (P.is_ok gfeat);
  check_bool "graph-mode single row" true (contains ~needle:"\"rows\":1" gfeat)

let test_train_predict_flow () =
  let t = make_server () in
  ignore (Server.handle_line t "LOAD g petersen");
  let train =
    Server.handle_line t
      "TRAIN clf ON g WITH 'deg;hom3;label' TARGET 'agg_sum{x2}([1] | E(x1,x2))' EPOCHS 10"
  in
  check_bool "TRAIN ok" true (P.is_ok train);
  check_bool "TRAIN reports a loss history" true (contains ~needle:"\"losses\":[" train);
  check_bool "TRAIN reports metrics" true
    (contains ~needle:"\"train_metric\":" train && contains ~needle:"\"test_metric\":" train);
  check_bool "MODELS lists the model" true
    (contains ~needle:"\"name\":\"clf\"" (Server.handle_line t "MODELS"));
  let pred = Server.handle_line t "PREDICT clf g" in
  check_bool "PREDICT ok" true (P.is_ok pred);
  check_bool "PREDICT covers every vertex" true (contains ~needle:"\"n\":10" pred);
  check_bool "PREDICT fresh on the source generation" true
    (contains ~needle:"\"stale\":false" pred);
  check_bool "PREDICT vertex subset" true
    (contains ~needle:"\"n\":2" (Server.handle_line t "PREDICT clf g 3 4"));
  check_bool "PREDICT out-of-range vertex rejected" true
    (contains ~needle:"ERR_BAD_ARG" (Server.handle_line t "PREDICT clf g 99"));
  (* Deterministic retrain: same spec, same weights, same scores. *)
  ignore
    (Server.handle_line t
       "TRAIN clf ON g WITH 'deg;hom3;label' TARGET 'agg_sum{x2}([1] | E(x1,x2))' EPOCHS 10");
  Alcotest.(check string) "retrain is deterministic" pred (Server.handle_line t "PREDICT clf g");
  (* A mutation of the source graph flips PREDICT to stale. *)
  ignore (Server.handle_line t "MUTATE g ADD_EDGES 0 2");
  check_bool "PREDICT stale after mutate" true
    (contains ~needle:"\"stale\":true" (Server.handle_line t "PREDICT clf g 0"))

let test_train_graph_mode () =
  let t = make_server () in
  ignore (Server.handle_line t "LOAD c5 cycle5");
  ignore (Server.handle_line t "LOAD c6 cycle6");
  ignore (Server.handle_line t "LOAD c7 cycle7");
  ignore (Server.handle_line t "LOAD c8 cycle8");
  let train =
    Server.handle_line t
      "TRAIN reg ON c5,c6,c7,c8 WITH 'deg;wl' TARGET 'agg_sum{x1,x2}(E(x1,x2) | [1])' MODE \
       GRAPH EPOCHS 10"
  in
  check_bool "graph-mode TRAIN ok" true (P.is_ok train);
  check_bool "graph-mode task is regress" true (contains ~needle:"\"task\":\"regress\"" train);
  check_bool "one row per graph" true (contains ~needle:"\"rows\":4" train);
  let pred = Server.handle_line t "PREDICT reg c6" in
  check_bool "graph-mode PREDICT ok" true (P.is_ok pred);
  check_bool "graph-mode PREDICT one row" true (contains ~needle:"\"n\":1" pred)

let test_model_error_codes () =
  let t = make_server () in
  ignore (Server.handle_line t "LOAD g petersen");
  check_bool "bad recipe classified" true
    (contains ~needle:"ERR_BAD_RECIPE" (Server.handle_line t "FEATURIZE g 'bogus'"));
  check_bool "kwl in vertex mode classified" true
    (contains ~needle:"ERR_BAD_RECIPE" (Server.handle_line t "FEATURIZE g 'kwl2' VERTEX"));
  check_bool "unknown graph classified" true
    (contains ~needle:"ERR_UNKNOWN_GRAPH" (Server.handle_line t "FEATURIZE nosuch 'deg'"));
  check_bool "unknown model classified" true
    (contains ~needle:"ERR_UNKNOWN_MODEL" (Server.handle_line t "PREDICT nosuch g"));
  ignore (Server.handle_line t "LOAD h cycle5");
  check_bool "vertex-mode multi-graph TRAIN rejected" true
    (contains ~needle:"ERR_BAD_ARG"
       (Server.handle_line t
          "TRAIN v ON g,h WITH 'deg' TARGET 'agg_sum{x2}([1] | E(x1,x2))' MODE VERTEX"));
  (* A wl one-hot schema is generation-dependent by design: mutating the
     graph changes the stable class count, so PREDICT reports a schema
     mismatch rather than silently truncating features. *)
  ignore
    (Server.handle_line t
       "TRAIN wlclf ON g WITH 'wl' TARGET 'agg_sum{x2}([1] | E(x1,x2))' EPOCHS 2");
  ignore (Server.handle_line t "MUTATE g ADD_EDGES 0 2");
  check_bool "wl width change is a schema mismatch" true
    (contains ~needle:"ERR_SCHEMA_MISMATCH" (Server.handle_line t "PREDICT wlclf g"))

let test_model_snapshot_roundtrip () =
  with_temp_snapshot @@ fun path ->
  let t = make_server () in
  ignore (Server.handle_line t "LOAD g petersen");
  ignore
    (Server.handle_line t
       "TRAIN clf ON g WITH 'deg;hom3;label' TARGET 'agg_sum{x2}([1] | E(x1,x2))' EPOCHS 5");
  let pred1 = Server.handle_line t "PREDICT clf g" in
  let save = Server.handle_line t (Printf.sprintf "SAVE %s" path) in
  check_bool "SAVE ok" true (P.is_ok save);
  check_bool "SAVE counts the model" true (contains ~needle:"\"models\":1" save);
  let t2 = make_server () in
  let restore = Server.handle_line t2 (Printf.sprintf "RESTORE %s" path) in
  check_bool "RESTORE ok" true (P.is_ok restore);
  check_bool "RESTORE counts the model" true (contains ~needle:"\"models\":1" restore);
  (* The restored registry answers PREDICT byte-identically: weights,
     ordering and staleness all survive the generation rekeying. *)
  Alcotest.(check string) "PREDICT byte-identical after restore" pred1
    (Server.handle_line t2 "PREDICT clf g");
  (* A model already stale at save time stays stale after restore (its
     sources map to the never-matching sentinel, not a fresh gen). *)
  ignore (Server.handle_line t "MUTATE g SET_LABEL 0 2.0");
  check_bool "stale before save" true
    (contains ~needle:"\"stale\":true" (Server.handle_line t "PREDICT clf g 0"));
  ignore (Server.handle_line t (Printf.sprintf "SAVE %s" path));
  let t3 = make_server () in
  ignore (Server.handle_line t3 (Printf.sprintf "RESTORE %s" path));
  check_bool "stale survives restore" true
    (contains ~needle:"\"stale\":true" (Server.handle_line t3 "PREDICT clf g 0"))

let test_predict_unseen_flag () =
  let t = make_server () in
  ignore (Server.handle_line t "LOAD g petersen");
  ignore (Server.handle_line t "LOAD h cycle5");
  ignore
    (Server.handle_line t
       "TRAIN clf ON g WITH 'deg;hom3;label' TARGET 'agg_sum{x2}([1] | E(x1,x2))' EPOCHS 5");
  let seen = Server.handle_line t "PREDICT clf g" in
  check_bool "source graph is seen" true (contains ~needle:"\"unseen\":false" seen);
  (* A graph the model never trained on must not look *fresher* than a
     mutated source: it is flagged unseen, with staleness inapplicable. *)
  let unseen = Server.handle_line t "PREDICT clf h" in
  check_bool "PREDICT on unseen graph ok" true (P.is_ok unseen);
  check_bool "unseen graph flagged" true (contains ~needle:"\"unseen\":true" unseen);
  check_bool "unseen is not reported stale" true (contains ~needle:"\"stale\":false" unseen)

let test_target_dim_rejected () =
  let t = make_server () in
  ignore (Server.handle_line t "LOAD g petersen");
  let reply = Server.handle_line t "TRAIN bad ON g WITH 'deg' TARGET '[1;2]'" in
  check_bool "2-dim TARGET rejected" true (not (P.is_ok reply));
  check_bool "classified as ERR_QUERY" true (contains ~needle:"ERR_QUERY" reply);
  check_bool "message names the dimension" true (contains ~needle:"dimension 2" reply);
  check_bool "model was not registered" true
    (not (contains ~needle:"\"name\":\"bad\"" (Server.handle_line t "MODELS")))

let test_histogram_overflow_folded () =
  (* path80 refines to ~40 stable WL classes — more than hist_width — so
     the fixed-width graph-mode histogram must fold the tail into the
     final bucket instead of dropping its mass. *)
  let module Featurize = Glql_server.Featurize in
  let g = match Registry.graph_of_spec "path80" with Ok g -> g | Error e -> failwith e in
  let classes =
    let result = Cr.run g in
    1 + Array.fold_left max (-1) (List.hd (Cr.stable_colors result))
  in
  check_bool "test graph exceeds hist_width" true (classes > 32);
  let cache = Cache.create ~plan_capacity:4 ~coloring_capacity:4 () in
  let cols = match Featurize.parse_recipe "wl" with Ok c -> c | Error _ -> assert false in
  match Featurize.build ~cache ~graph_name:"p" ~gen:0 P.Fm_graph g cols with
  | Error (code, msg) -> Alcotest.failf "graph-mode build failed: %s (%s)" msg code
  | Ok b ->
      check_int "fixed histogram width" 32 b.Featurize.b_width;
      let row = b.Featurize.b_rows.(0) in
      let total = Array.fold_left ( +. ) 0.0 row in
      Alcotest.(check (float 1e-9)) "histogram conserves vertex count" 80.0 total;
      check_bool "overflow folded into the final bucket" true (row.(31) > row.(30))

let test_predict_batch_matches_loop () =
  let t = make_server () in
  List.iter (fun l -> ignore (Server.handle_line t l))
    [ "LOAD c5 cycle5"; "LOAD c6 cycle6"; "LOAD c7 cycle7"; "LOAD c8 cycle8" ];
  ignore
    (Server.handle_line t
       "TRAIN reg ON c5,c6,c7,c8 WITH 'deg;wl' TARGET 'agg_sum{x1,x2}(E(x1,x2) | [1])' MODE \
        GRAPH EPOCHS 10");
  let batched = Server.handle_line t "PREDICT reg ON c5,c6,c7" in
  check_bool "batched PREDICT ok" true (P.is_ok batched);
  check_bool "batch counts its graphs" true (contains ~needle:"\"graphs\":3" batched);
  (* Each batch item is byte-identical to the single-PREDICT payload. *)
  List.iter
    (fun g ->
      let single = Server.handle_line t (Printf.sprintf "PREDICT reg %s" g) in
      check_bool "single PREDICT ok" true (P.is_ok single);
      let payload = String.sub single 3 (String.length single - 3) in
      check_bool (Printf.sprintf "batch embeds %s payload verbatim" g) true
        (contains ~needle:payload batched))
    [ "c5"; "c6"; "c7" ];
  (* A failing graph fails the whole batch with its classified error,
     exactly as the first failing iteration of a client-side loop would. *)
  let partial = Server.handle_line t "PREDICT reg ON c5,nosuch,c7" in
  check_bool "batch is atomic on errors" true
    (contains ~needle:"ERR_UNKNOWN_GRAPH" partial);
  check_bool "batched grammar rejects empty list" true
    (contains ~needle:"ERR_PARSE" (Server.handle_line t "PREDICT reg ON ,,"))

let test_feature_cache_hits () =
  let t = make_server () in
  ignore (Server.handle_line t "LOAD g petersen");
  ignore
    (Server.handle_line t
       "TRAIN clf ON g WITH 'deg;hom3;label' TARGET 'agg_sum{x2}([1] | E(x1,x2))' EPOCHS 5");
  let feature_stat key = List.assoc key (Cache.stats (Server.caches t)) in
  (* TRAIN built and stored the matrix; the first PREDICT on the
     unchanged generation comes back whole from the feature cache. *)
  let misses0 = feature_stat "feature_misses" in
  let hits0 = feature_stat "feature_hits" in
  ignore (Server.handle_line t "PREDICT clf g");
  ignore (Server.handle_line t "PREDICT clf g");
  check_int "warm PREDICTs add no feature misses" misses0 (feature_stat "feature_misses");
  check_int "each warm PREDICT is a feature hit" (hits0 + 2) (feature_stat "feature_hits");
  check_bool "STATS surfaces the feature cache" true
    (let stats = Server.handle_line t "STATS" in
     contains ~needle:"\"feature_hits\":" stats
     && contains ~needle:"\"feature_bytes\":" stats
     && contains ~needle:"\"feature_byte_budget\":" stats)

let test_mutate_invalidates_feature_cache () =
  let t = make_server () in
  ignore (Server.handle_line t "LOAD g petersen");
  let feature_stat key = List.assoc key (Cache.stats (Server.caches t)) in
  (* 'deg' consults no column cache, so cache_hits in the reply isolates
     the feature-matrix cache: cold = 0 hits, warm = exactly 1. *)
  check_bool "first FEATURIZE is cold" true
    (contains ~needle:"\"cache_hits\":0" (Server.handle_line t "FEATURIZE g 'deg'"));
  check_int "matrix cached" 1 (feature_stat "feature_entries");
  check_bool "second FEATURIZE is warm" true
    (contains ~needle:"\"cache_hits\":1" (Server.handle_line t "FEATURIZE g 'deg'"));
  ignore (Server.handle_line t "MUTATE g ADD_EDGES 0 2");
  check_int "mutation evicts the generation's matrix" 0 (feature_stat "feature_entries");
  let after = Server.handle_line t "FEATURIZE g 'deg'" in
  check_bool "post-MUTATE FEATURIZE is cold again" true
    (contains ~needle:"\"cache_hits\":0" after)

let suite =
  ( "server",
    [
      case "cache key: alpha equivalence" test_key_alpha_equivalent;
      case "cache key: free-var renaming" test_key_free_var_renaming;
      case "cache key: symmetric edge args" test_key_symmetric_edge;
      case "cache key: binder reordering" test_key_binder_reordering;
      case "cache key: distinct queries differ" test_key_distinct_queries;
      case "protocol tokenizer" test_tokenize;
      case "protocol requests" test_parse_request_ok;
      case "protocol TRACE option" test_parse_request_trace_option;
      case "protocol MUTATE grammar" test_parse_mutate;
      case "protocol malformed lines" test_parse_request_malformed;
      case "protocol json rendering" test_json_rendering;
      case "registry specs" test_registry_specs;
      case "registry find and register" test_registry_find_caches;
      case "registry spec size limits" test_registry_spec_limits;
      case "registry generations" test_registry_generations;
      case "registry mutate batches" test_registry_mutate;
      case "registry canonical spec whitespace" test_registry_canonical_spec;
      case "handle_line: query flow and plan cache" test_handle_line_flow;
      case "handle_line: coloring cache" test_handle_line_wl_cache;
      case "handle_line: reload serves fresh coloring" test_reload_serves_fresh_coloring;
      case "handle_line: cell guard overflow" test_cell_guard_overflow;
      case "handle_line: errors and stats" test_handle_line_errors;
      case "handle_line: EXPLAIN stage summary" test_handle_line_explain;
      case "handle_line: TRACE option" test_handle_line_trace_option;
      case "protocol version reporting" test_protocol_version_reporting;
      case "metrics ring wrap percentiles" test_metrics_ring_wrap;
      case "persistence: SAVE/RESTORE round trip" test_save_restore_roundtrip;
      case "persistence: malformed snapshot leaves state" test_restore_malformed_leaves_state;
      case "persistence: reload after restore stays fresh" test_restore_then_reload_stays_fresh;
      case "cache clear" test_cache_clear_resets_entries;
      case "error codes are structured" test_error_codes;
      case "HOM cost guard" test_hom_cost_guard;
      case "deadline cancels kernels" test_deadline_cancels_kernels;
      case "handle_lines: batch coalescing" test_batch_coalescing;
      case "handle_line: MUTATE batch semantics" test_handle_line_mutate;
      case "handle_line: MUTATE incremental recolour" test_handle_line_mutate_incremental;
      case "cache: mutation seed lifecycle" test_cache_seed_lifecycle;
      case "cache: seeds evicted before live entries" test_cache_seed_evicted_first;
      case "protocol model-serving grammar" test_parse_model_requests;
      case "handle_line: FEATURIZE recipes" test_featurize_requests;
      case "handle_line: TRAIN/PREDICT flow" test_train_predict_flow;
      case "handle_line: graph-mode TRAIN" test_train_graph_mode;
      case "model-serving error codes" test_model_error_codes;
      case "featurize cell budget pre-empts materialization" test_featurize_cell_budget_preempts;
      case "TRAIN honours the request deadline" test_train_honours_deadline;
      case "persistence: model registry round trip" test_model_snapshot_roundtrip;
      case "PREDICT flags unseen graphs" test_predict_unseen_flag;
      case "TRAIN rejects multi-dimensional TARGET" test_target_dim_rejected;
      case "graph-mode histogram folds overflow" test_histogram_overflow_folded;
      case "batched PREDICT matches the per-graph loop" test_predict_batch_matches_loop;
      case "feature cache: warm PREDICT hits" test_feature_cache_hits;
      case "feature cache: MUTATE invalidates" test_mutate_invalidates_feature_cache;
      prop_parse_request_total;
      case "line_buf framing" test_line_buf_framing;
      case "line_buf limits" test_line_buf_limits;
      prop_line_buf_reassembly;
    ] )
