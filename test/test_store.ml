(* Tests for lib/store: the CRC-32 implementation, the bounds-checked
   binary reader/writer, the sectioned container (corrupt-input
   behaviour: truncation, bit flips, bad magic, future versions), and
   bit-identical snapshot round trips over random graphs. *)

open Helpers
module Crc32 = Glql_util.Crc32
module Bin_io = Glql_util.Bin_io
module Container = Glql_store.Container
module Snapshot = Glql_store.Snapshot
module Graph = Glql_graph.Graph
module Generators = Glql_graph.Generators
module Cr = Glql_wl.Color_refinement
module Kwl = Glql_wl.Kwl
module W = Bin_io.Writer
module R = Bin_io.Reader

let is_error = function Error _ -> true | Ok _ -> false

let error_contains ~needle = function
  | Ok _ -> false
  | Error msg ->
      let nl = String.length needle and hl = String.length msg in
      let rec go i = i + nl <= hl && (String.sub msg i nl = needle || go (i + 1)) in
      go 0

(* --- CRC-32 --------------------------------------------------------------- *)

let test_crc32_vectors () =
  (* The IEEE 802.3 check value, same as zlib's crc32(). *)
  check_int "123456789" 0xCBF43926 (Crc32.of_string "123456789");
  check_int "empty" 0 (Crc32.of_string "");
  check_bool "one-bit difference changes the crc" true
    (Crc32.of_string "abc" <> Crc32.of_string "abd");
  (* Incremental updates match the one-shot digest. *)
  let c = Crc32.init in
  let c = Crc32.update c "12345" ~pos:0 ~len:5 in
  let c = Crc32.update c "6789" ~pos:0 ~len:4 in
  check_int "incremental = one-shot" 0xCBF43926 (Crc32.finish c)

(* --- binary reader/writer ------------------------------------------------- *)

let test_bin_io_roundtrip () =
  let w = W.create () in
  W.u8 w 200;
  W.u32 w 0xDEADBEEF;
  W.i64 w (-12345678901234);
  W.f64 w 1.5e-300;
  W.f64 w Float.nan;
  W.str w "hello";
  W.int_array w [| min_int; -1; 0; max_int |];
  W.float_array w [| 0.1; -0.0 |];
  let r = R.of_string (W.contents w) in
  check_int "u8" 200 (R.u8 r);
  check_int "u32" 0xDEADBEEF (R.u32 r);
  check_int "i64" (-12345678901234) (R.i64 r);
  check_bool "f64" true (R.f64 r = 1.5e-300);
  check_bool "f64 nan bit-exact" true (Float.is_nan (R.f64 r));
  Alcotest.(check string) "str" "hello" (R.str r);
  check_bool "int array" true (R.int_array r = [| min_int; -1; 0; max_int |]);
  let fs = R.float_array r in
  check_bool "float array incl. -0." true
    (fs.(0) = 0.1 && Int64.bits_of_float fs.(1) = Int64.bits_of_float (-0.0));
  R.expect_end r

let test_bin_io_bounds () =
  (* Every primitive must fail cleanly on truncated input, including
     length prefixes larger than the remaining bytes (no allocation of
     attacker-controlled sizes). *)
  let truncated = [ ""; "\x01"; "\xff\xff\xff\xff"; "\xff\xff\xff\x7f abc" ] in
  List.iter
    (fun s ->
      check_bool "str on truncated input" true (is_error (Bin_io.decode s R.str));
      check_bool "int_array on truncated input" true (is_error (Bin_io.decode s R.int_array)))
    truncated;
  check_bool "u32 out of writer range" true
    (match W.u32 (W.create ()) (-1) with
    | () -> false
    | exception Invalid_argument _ -> true);
  (* Trailing garbage is an error, not silently ignored. *)
  check_bool "expect_end rejects leftovers" true
    (is_error
       (Bin_io.decode "\x00extra" (fun r ->
            let v = R.u8 r in
            R.expect_end r;
            v)))

(* --- container ------------------------------------------------------------ *)

let sections = [ ("AAAA", "first payload"); ("BBBB", ""); ("CCCC", "third") ]

let test_container_roundtrip () =
  let s = Container.to_string sections in
  (match Container.of_string s with
  | Ok decoded -> check_bool "sections round trip" true (decoded = sections)
  | Error e -> Alcotest.failf "container decode failed: %s" e);
  check_bool "starts with magic" true (String.sub s 0 4 = Container.magic)

let test_container_truncation () =
  let s = Container.to_string sections in
  (* Every strict prefix must be rejected — there is no length at which a
     cut-off file looks complete. *)
  for len = 0 to String.length s - 1 do
    if not (is_error (Container.of_string (String.sub s 0 len))) then
      Alcotest.failf "truncation to %d bytes accepted" len
  done

let test_container_bit_flips () =
  let s = Container.to_string sections in
  (* No single corrupted byte may yield a successful parse: header damage
     trips the magic/version/framing checks, body damage trips a CRC. *)
  for i = 0 to String.length s - 1 do
    let b = Bytes.of_string s in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xFF));
    if not (is_error (Container.of_string (Bytes.to_string b))) then
      Alcotest.failf "flipping byte %d accepted" i
  done;
  (* A payload flip specifically reports the checksum, naming the section. *)
  let payload_pos = String.length s - 1 (* last byte of the last payload *) in
  let b = Bytes.of_string s in
  Bytes.set b payload_pos 'X';
  check_bool "payload flip reports a checksum mismatch" true
    (error_contains ~needle:"checksum mismatch in section \"CCCC\""
       (Container.of_string (Bytes.to_string b)))

let test_container_bad_magic_and_version () =
  let s = Container.to_string sections in
  let bad_magic = "NOPE" ^ String.sub s 4 (String.length s - 4) in
  check_bool "bad magic reported" true
    (error_contains ~needle:"bad magic" (Container.of_string bad_magic));
  check_bool "plain text rejected" true
    (error_contains ~needle:"bad magic" (Container.of_string "this is not a snapshot file"));
  (* Patch the format version (bytes 4..7, little-endian) to a future one. *)
  let future = Bytes.of_string s in
  Bytes.set future 4 (Char.chr 99);
  check_bool "future version reported" true
    (error_contains ~needle:"unsupported snapshot format version 99"
       (Container.of_string (Bytes.to_string future)))

(* --- snapshots ------------------------------------------------------------ *)

let graph_labels g = Array.init (Graph.n_vertices g) (Graph.label g)

let graph_equal a b =
  Graph.n_vertices a = Graph.n_vertices b
  && Graph.to_csr a = Graph.to_csr b
  && graph_labels a = graph_labels b

let sample_snapshot () =
  let g = Generators.petersen () in
  let h = Generators.grid 2 3 in
  {
    Snapshot.producer = "test";
    saved_at = 1234.5;
    graphs =
      [
        { Snapshot.g_name = "g"; g_spec = "petersen"; g_gen = 0; g_graph = g };
        { Snapshot.g_name = "h"; g_spec = "grid2x3"; g_gen = 1; g_graph = h };
      ];
    colorings =
      [
        { Snapshot.c_name = "g"; c_data = Snapshot.Cr_data (Cr.run g) };
        {
          Snapshot.c_name = "h";
          c_data = Snapshot.Kwl_data (2, Kwl.run_joint ~k:2 ~variant:Kwl.Folklore [ h ]);
        };
      ];
    plans = [ ("key-a", "agg_sum{x2}([1] | E(x1,x2))"); ("key-b", "[1]") ];
    models =
      [
        {
          Snapshot.m_name = "deg-clf";
          m_task = 0;
          m_mode = 0;
          m_recipe = "deg;label";
          m_target = "agg_sum{x2}([1] | E(x1,x2))";
          m_schema = "vertex|deg=1;label=1";
          m_sources = [ ("g", 0) ];
          m_sizes = [ 2; 1 ];
          m_seed = 1;
          m_params =
            [ (2, 1, [| 0.25; -0.5 |]); (1, 1, [| 0.125 |]) ];
          m_rows = 10;
          m_epochs = 3;
          m_lr = 0.0625;
          m_split = 0.75;
          m_losses = [| 0.9; 0.5; 0.25 |];
          m_train_metric = 0.875;
          m_test_metric = 0.5;
        };
      ];
    metrics =
      Some
        {
          Snapshot.m_requests = 7;
          m_errors = 2;
          m_bytes_in = 100;
          m_bytes_out = 2000;
          m_by_command = [ ("QUERY", 4); ("WL", 3) ];
        };
  }

let test_snapshot_roundtrip () =
  let snap = sample_snapshot () in
  let encoded = Snapshot.encode snap in
  match Snapshot.decode encoded with
  | Error e -> Alcotest.failf "decode failed: %s" e
  | Ok decoded ->
      Alcotest.(check string) "producer" "test" decoded.Snapshot.producer;
      check_float "saved_at" 1234.5 decoded.Snapshot.saved_at;
      check_int "graph count" 2 (List.length decoded.Snapshot.graphs);
      List.iter2
        (fun (a : Snapshot.graph_entry) (b : Snapshot.graph_entry) ->
          check_bool ("graph " ^ a.Snapshot.g_name) true
            (a.Snapshot.g_name = b.Snapshot.g_name
            && a.Snapshot.g_spec = b.Snapshot.g_spec
            && a.Snapshot.g_gen = b.Snapshot.g_gen
            && graph_equal a.Snapshot.g_graph b.Snapshot.g_graph))
        snap.Snapshot.graphs decoded.Snapshot.graphs;
      (* Colourings survive with identical histories / stable colours. *)
      (match (snap.Snapshot.colorings, decoded.Snapshot.colorings) with
      | ( [ { Snapshot.c_data = Snapshot.Cr_data cr; _ }; { c_data = Snapshot.Kwl_data (k, kwl); _ } ],
          [ { Snapshot.c_data = Snapshot.Cr_data cr'; _ }; { c_data = Snapshot.Kwl_data (k', kwl'); _ } ] )
        ->
          check_bool "cr history identical" true (Cr.history cr = Cr.history cr');
          check_int "cr rounds" (Cr.rounds cr) (Cr.rounds cr');
          check_int "kwl k" k k';
          check_bool "kwl stable identical" true (Kwl.stable_colors kwl = Kwl.stable_colors kwl');
          check_int "kwl rounds" (Kwl.rounds kwl) (Kwl.rounds kwl')
      | _ -> Alcotest.fail "unexpected colouring shapes");
      check_bool "plans identical" true (decoded.Snapshot.plans = snap.Snapshot.plans);
      check_bool "metrics identical" true (decoded.Snapshot.metrics = snap.Snapshot.metrics);
      (* The decisive check: re-encoding the decoded snapshot reproduces
         the original byte string exactly. *)
      Alcotest.(check string) "bit-identical re-encoding" encoded (Snapshot.encode decoded)

let test_snapshot_file_roundtrip () =
  let snap = sample_snapshot () in
  let path = Filename.temp_file "glql_store_test" ".glqs" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      (match Snapshot.write_file path snap with
      | Ok bytes -> check_int "write_file size" (String.length (Snapshot.encode snap)) bytes
      | Error e -> Alcotest.failf "write_file failed: %s" e);
      match Snapshot.read_file path with
      | Ok decoded ->
          Alcotest.(check string)
            "file round trip bit-identical" (Snapshot.encode snap) (Snapshot.encode decoded)
      | Error e -> Alcotest.failf "read_file failed: %s" e)

let test_snapshot_malformed () =
  let snap = sample_snapshot () in
  let encoded = Snapshot.encode snap in
  check_bool "missing file" true (is_error (Snapshot.read_file "/nonexistent/glql.snap"));
  check_bool "empty input" true (is_error (Snapshot.decode ""));
  check_bool "missing META section" true
    (error_contains ~needle:"missing"
       (Snapshot.decode (Container.to_string [ ("ZZZZ", "opaque") ])));
  (* A colouring naming a graph the snapshot does not carry is corrupt. *)
  let orphan =
    { snap with Snapshot.colorings = [ { Snapshot.c_name = "nope"; c_data = Snapshot.Cr_data (Cr.run (Generators.petersen ())) } ] }
  in
  check_bool "orphan colouring rejected" true
    (error_contains ~needle:"unknown graph" (Snapshot.decode (Snapshot.encode orphan)));
  (* Unknown extra sections are tolerated (minor format growth). *)
  (match Container.of_string encoded with
  | Error e -> Alcotest.failf "container re-parse failed: %s" e
  | Ok secs ->
      check_bool "unknown section tolerated" true
        (match Snapshot.decode (Container.to_string (secs @ [ ("XTRA", "future data") ])) with
        | Ok _ -> true
        | Error _ -> false));
  (* Truncating the snapshot anywhere still fails cleanly. *)
  let n = String.length encoded in
  List.iter
    (fun len ->
      check_bool (Printf.sprintf "truncated to %d bytes" len) true
        (is_error (Snapshot.decode (String.sub encoded 0 len))))
    [ 0; 3; 8; n / 4; n / 2; n - 1 ]

(* Random labelled graphs round-trip bit-identically: structure, labels,
   and the colour-refinement run all survive encode/decode, and the
   re-encoding is byte-equal. *)
let test_snapshot_qcheck_roundtrip =
  qtest ~count:60 "snapshot round trip on random graphs" (graph_arbitrary ~max_n:9 ())
    (fun param ->
      let g = labelled_graph_of param in
      let snap =
        {
          Snapshot.producer = "qcheck";
          saved_at = 1.0;
          graphs = [ { Snapshot.g_name = "r"; g_spec = "random"; g_gen = 3; g_graph = g } ];
          colorings = [ { Snapshot.c_name = "r"; c_data = Snapshot.Cr_data (Cr.run g) } ];
          plans = [ ("k", "[1]") ];
          models = [];
          metrics = None;
        }
      in
      let encoded = Snapshot.encode snap in
      match Snapshot.decode encoded with
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e
      | Ok decoded -> (
          match (decoded.Snapshot.graphs, decoded.Snapshot.colorings) with
          | [ ge ], [ { Snapshot.c_data = Snapshot.Cr_data cr; _ } ] ->
              graph_equal g ge.Snapshot.g_graph
              && Cr.history cr = Cr.history (Cr.run g)
              && Snapshot.encode decoded = encoded
          | _ -> false))

let suite =
  ( "store",
    [
      case "crc32 vectors" test_crc32_vectors;
      case "bin_io round trip" test_bin_io_roundtrip;
      case "bin_io bounds checks" test_bin_io_bounds;
      case "container round trip" test_container_roundtrip;
      case "container truncation" test_container_truncation;
      case "container bit flips" test_container_bit_flips;
      case "container bad magic / future version" test_container_bad_magic_and_version;
      case "snapshot round trip" test_snapshot_roundtrip;
      case "snapshot file round trip" test_snapshot_file_roundtrip;
      case "snapshot malformed inputs" test_snapshot_malformed;
      test_snapshot_qcheck_roundtrip;
    ] )
