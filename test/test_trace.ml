(* Tests for Glql_util.Trace (span nesting, disabled-mode no-op, sink
   collection across Pool worker domains, Chrome-trace output) and the
   shared Glql_util.Json printer. *)

open Helpers
module Trace = Glql_util.Trace
module Json = Glql_util.Json
module Pool = Glql_util.Pool

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let names spans = List.map (fun sp -> sp.Trace.name) spans

(* --- json ----------------------------------------------------------------- *)

let test_json_printer () =
  Alcotest.(check string)
    "object" "{\"a\":1,\"b\":[true,null,\"x\"]}"
    (Json.to_string
       (Json.Obj [ ("a", Json.Int 1); ("b", Json.List [ Json.Bool true; Json.Null; Json.Str "x" ]) ]));
  Alcotest.(check string) "integer float" "42" (Json.to_string (Json.Float 42.0));
  Alcotest.(check string) "escapes" "\"a\\\"b\\n\"" (Json.to_string (Json.Str "a\"b\n"))

let test_json_nonfinite () =
  (* Regression: %.17g prints "inf"/"-inf", which are not JSON tokens —
     every non-finite float must render as null. *)
  Alcotest.(check string) "nan" "null" (Json.to_string (Json.Float Float.nan));
  Alcotest.(check string) "+inf" "null" (Json.to_string (Json.Float Float.infinity));
  Alcotest.(check string) "-inf" "null" (Json.to_string (Json.Float Float.neg_infinity));
  Alcotest.(check string)
    "mixed list" "[1.5,null,null,null]"
    (Json.to_string
       (Json.List
          [
            Json.Float 1.5;
            Json.Float Float.nan;
            Json.Float Float.infinity;
            Json.Float Float.neg_infinity;
          ]))

(* --- spans ---------------------------------------------------------------- *)

let test_disabled_noop () =
  check_bool "disabled outside any sink" false (Trace.enabled ());
  (* with_span is transparent when nothing listens: the thunk runs, its
     value comes back, and nothing is recorded anywhere. *)
  let sink = Trace.make_sink ~keep_spans:true () in
  check_int "value passes through" 7 (Trace.with_span "dead" (fun () -> 7));
  Trace.annotate "k" "v" (* no open span: must not raise *);
  check_int "uninstalled sink stays empty" 0 (List.length (Trace.spans sink))

let test_span_nesting () =
  let sink = Trace.make_sink ~keep_spans:true () in
  let v =
    Trace.with_sink sink (fun () ->
        check_bool "enabled under a sink" true (Trace.enabled ());
        Trace.with_span "outer" (fun () ->
            let a =
              Trace.with_span "inner" (fun () ->
                  Trace.annotate "hit" "yes";
                  1)
            in
            let b = Trace.with_span "inner" (fun () -> 2) in
            a + b))
  in
  check_int "computed through the spans" 3 v;
  check_bool "disabled again after with_sink" false (Trace.enabled ());
  let spans = Trace.spans sink in
  Alcotest.(check (list string)) "start-ordered names" [ "outer"; "inner"; "inner" ] (names spans);
  let outer = List.hd spans in
  let first_inner = List.nth spans 1 in
  check_int "outer depth" 1 outer.Trace.depth;
  check_int "inner depth" 2 first_inner.Trace.depth;
  check_bool "annotation captured" true (List.mem ("hit", "yes") first_inner.Trace.args);
  check_bool "outer covers inner" true (Int64.compare outer.Trace.dur_ns first_inner.Trace.dur_ns >= 0)

let test_span_records_on_raise () =
  let sink = Trace.make_sink ~keep_spans:true () in
  (try Trace.with_sink sink (fun () -> Trace.with_span "boom" (fun () -> failwith "boom"))
   with Failure _ -> ());
  Alcotest.(check (list string)) "raised span still recorded" [ "boom" ] (names (Trace.spans sink))

let test_on_span_callback () =
  let seen = ref [] in
  let sink = Trace.make_sink ~on_span:(fun sp -> seen := sp.Trace.name :: !seen) () in
  Trace.with_sink sink (fun () ->
      Trace.with_span "a" (fun () -> Trace.with_span "b" (fun () -> ())));
  (* Callback-only sink: spans fire the callback (completion order:
     innermost first) but are not retained. *)
  Alcotest.(check (list string)) "callback order" [ "a"; "b" ] !seen;
  check_int "nothing retained without keep_spans" 0 (List.length (Trace.spans sink))

let test_spans_under_pool () =
  (* Spans opened on Pool worker domains must land in the dispatching
     request's sink, whatever the pool size. *)
  let sink = Trace.make_sink ~keep_spans:true () in
  let input = Array.init 64 (fun i -> i) in
  let out =
    Trace.with_sink sink (fun () ->
        Pool.parallel_map_array (fun i -> Trace.with_span "item" (fun () -> i * 2)) input)
  in
  check_bool "results correct" true (Array.for_all (fun x -> x >= 0) out);
  check_int "last result" 126 out.(63);
  let spans = Trace.spans sink in
  check_int "one span per item" 64 (List.length spans);
  check_bool "all named item" true (List.for_all (fun sp -> sp.Trace.name = "item") spans)

let test_nested_sinks_restore () =
  let outer = Trace.make_sink ~keep_spans:true () in
  let inner = Trace.make_sink ~keep_spans:true () in
  Trace.with_sink outer (fun () ->
      Trace.with_span "o1" (fun () -> ());
      Trace.with_sink inner (fun () -> Trace.with_span "i1" (fun () -> ()));
      Trace.with_span "o2" (fun () -> ()));
  Alcotest.(check (list string)) "outer sink" [ "o1"; "o2" ] (names (Trace.spans outer));
  Alcotest.(check (list string)) "inner sink" [ "i1" ] (names (Trace.spans inner))

let test_spans_to_json () =
  let sink = Trace.make_sink ~keep_spans:true () in
  let origin = Glql_util.Clock.now_ns () in
  Trace.with_sink sink (fun () ->
      Trace.with_span ~args:[ ("k", "v") ] "stage" (fun () -> ignore (Sys.opaque_identity 1)));
  let s = Json.to_string (Trace.spans_to_json ~origin_ns:origin (Trace.spans sink)) in
  check_bool "is a list" true (String.length s > 0 && s.[0] = '[');
  check_bool "has name" true (contains ~needle:"\"name\":\"stage\"" s);
  check_bool "has dur" true (contains ~needle:"\"dur_us\":" s);
  check_bool "has depth" true (contains ~needle:"\"depth\":1" s);
  check_bool "has args" true (contains ~needle:"{\"k\":\"v\"}" s)

let test_chrome_file () =
  let path = Filename.temp_file "glql_trace" ".json" in
  Trace.enable_chrome path;
  check_bool "chrome on" true (Trace.chrome_enabled ());
  Trace.with_span "outer" (fun () -> Trace.with_span "inner" (fun () -> ()));
  Trace.flush_chrome ();
  check_bool "chrome off after flush" false (Trace.chrome_enabled ());
  Trace.flush_chrome () (* idempotent *);
  let ic = open_in path in
  let len = in_channel_length ic in
  let body = really_input_string ic len in
  close_in ic;
  Sys.remove path;
  check_bool "starts as an array" true (String.length body > 0 && body.[0] = '[');
  check_bool "closes the array" true (contains ~needle:"]" body);
  check_bool "complete events" true (contains ~needle:"\"ph\":\"X\"" body);
  check_bool "outer event present" true (contains ~needle:"\"name\":\"outer\"" body);
  check_bool "inner event present" true (contains ~needle:"\"name\":\"inner\"" body);
  check_bool "events carry a tid" true (contains ~needle:"\"tid\":" body)

let suite =
  ( "trace",
    [
      case "json printer" test_json_printer;
      case "json non-finite floats" test_json_nonfinite;
      case "disabled mode is a no-op" test_disabled_noop;
      case "span nesting and annotate" test_span_nesting;
      case "span recorded when the thunk raises" test_span_records_on_raise;
      case "on_span callback" test_on_span_callback;
      case "spans collected across the pool" test_spans_under_pool;
      case "nested sinks restore" test_nested_sinks_restore;
      case "spans_to_json rendering" test_spans_to_json;
      case "chrome trace file" test_chrome_file;
    ] )
