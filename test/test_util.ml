(* Unit and property tests for glql_util: SplitMix64, signatures,
   interning, tables. *)

open Helpers
module Rng = Glql_util.Rng
module Sig_hash = Glql_util.Sig_hash
module Tbl = Glql_util.Tbl
module Lru = Glql_util.Lru
module Clock = Glql_util.Clock

let test_determinism () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_different_seeds () =
  let a = Rng.create 1 and b = Rng.create 2 in
  check_bool "different streams" false (Rng.next_int64 a = Rng.next_int64 b)

let test_split_independent () =
  let a = Rng.create 9 in
  let c = Rng.split a in
  check_bool "split diverges" false (Rng.next_int64 a = Rng.next_int64 c)

let prop_float_range =
  qtest "float in [0,1)" QCheck.(int_bound 1_000_000) (fun seed ->
      let rng = Rng.create seed in
      let x = Rng.float rng in
      x >= 0.0 && x < 1.0)

let prop_int_range =
  qtest "int in range"
    QCheck.(pair (int_bound 1_000_000) (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let x = Rng.int rng bound in
      x >= 0 && x < bound)

let prop_shuffle_permutation =
  qtest "shuffle is a permutation"
    QCheck.(pair (int_bound 1_000_000) (int_range 1 50))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let a = Array.init n (fun i -> i) in
      Rng.shuffle rng a;
      let sorted = Array.copy a in
      Array.sort compare sorted;
      sorted = Array.init n (fun i -> i))

let prop_sample_distinct =
  qtest "sample without replacement distinct"
    QCheck.(pair (int_bound 1_000_000) (int_range 1 30))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let k = 1 + (n / 2) in
      let s = Rng.sample_without_replacement rng ~n ~k in
      Array.length s = k
      && List.length (List.sort_uniq compare (Array.to_list s)) = k
      && Array.for_all (fun x -> x >= 0 && x < n) s)

let test_gaussian_moments () =
  let rng = Rng.create 11 in
  let n = 20_000 in
  let sum = ref 0.0 and sq = ref 0.0 in
  for _ = 1 to n do
    let x = Rng.gaussian rng in
    sum := !sum +. x;
    sq := !sq +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sq /. float_of_int n) -. (mean *. mean) in
  check_bool "mean near 0" true (Float.abs mean < 0.05);
  check_bool "variance near 1" true (Float.abs (var -. 1.0) < 0.1)

let test_multiset_signature () =
  Alcotest.(check string)
    "order independent"
    (Sig_hash.of_int_multiset [| 3; 1; 2 |])
    (Sig_hash.of_int_multiset [| 2; 3; 1 |]);
  check_bool "different multisets differ" false
    (Sig_hash.of_int_multiset [| 1; 1; 2 |] = Sig_hash.of_int_multiset [| 1; 2; 2 |])

let test_multiset_no_mutation () =
  let a = [| 3; 1; 2 |] in
  let _ = Sig_hash.of_int_multiset a in
  check_bool "input untouched" true (a = [| 3; 1; 2 |])

let test_int_list_order_sensitive () =
  check_bool "order sensitive" false
    (Sig_hash.of_int_list [ 1; 2 ] = Sig_hash.of_int_list [ 2; 1 ])

let test_list_signature_unambiguous () =
  (* [1; 23] and [12; 3] must not collide. *)
  check_bool "no concatenation ambiguity" false
    (Sig_hash.of_int_list [ 1; 23 ] = Sig_hash.of_int_list [ 12; 3 ])

let test_float_vector_rounding () =
  Alcotest.(check string)
    "rounds at decimals"
    (Sig_hash.of_float_vector ~decimals:3 [| 0.12345 |])
    (Sig_hash.of_float_vector ~decimals:3 [| 0.12312 |]);
  check_bool "distinguishes beyond tolerance" false
    (Sig_hash.of_float_vector ~decimals:3 [| 0.123 |] = Sig_hash.of_float_vector ~decimals:3 [| 0.125 |])

let test_float_vector_negative_zero () =
  Alcotest.(check string)
    "-0 = 0"
    (Sig_hash.of_float_vector [| -0.0 |])
    (Sig_hash.of_float_vector [| 0.0 |])

let test_interner () =
  let i = Sig_hash.Interner.create () in
  let a = Sig_hash.Interner.intern i "x" in
  let b = Sig_hash.Interner.intern i "y" in
  let a' = Sig_hash.Interner.intern i "x" in
  check_int "first id" 0 a;
  check_int "second id" 1 b;
  check_int "stable" a a';
  check_int "size" 2 (Sig_hash.Interner.size i)

let test_table_rendering () =
  let t = Tbl.create ~headers:[ "a"; "bb" ] in
  let t = Tbl.add_row t [ "xxx"; "y" ] in
  let s = Tbl.to_string t in
  check_bool "has header" true (String.length s > 0);
  check_bool "header row present" true
    (String.sub s 0 1 = "|");
  Alcotest.check_raises "ragged row rejected" (Invalid_argument "Tbl.add_row: row width differs from header width")
    (fun () -> ignore (Tbl.add_row t [ "only-one" ]))

let test_fmt_float () =
  Alcotest.(check string) "integer floats" "3" (Tbl.fmt_float 3.0);
  Alcotest.(check string) "fractional" "0.5000" (Tbl.fmt_float 0.5)

let test_lru_eviction_order () =
  let c = Lru.create ~capacity:3 () in
  Lru.put c "a" 1;
  Lru.put c "b" 2;
  Lru.put c "c" 3;
  (* Touch "a" so "b" becomes least-recently used. *)
  check_bool "a present" true (Lru.get c "a" = Some 1);
  Lru.put c "d" 4;
  check_bool "b evicted" false (Lru.mem c "b");
  check_bool "a survives" true (Lru.mem c "a");
  check_bool "c survives" true (Lru.mem c "c");
  check_bool "d inserted" true (Lru.mem c "d");
  check_int "evictions" 1 (Lru.evictions c);
  Alcotest.(check (list string)) "mru order" [ "d"; "a"; "c" ] (Lru.keys_mru_first c)

let test_lru_counters () =
  let c = Lru.create ~capacity:2 () in
  check_bool "miss on empty" true (Lru.get c "x" = None);
  Lru.put c "x" 10;
  check_bool "hit" true (Lru.get c "x" = Some 10);
  check_bool "second miss" true (Lru.get c "y" = None);
  check_int "hits" 1 (Lru.hits c);
  check_int "misses" 2 (Lru.misses c);
  (* find_or_add: a miss computes once, a hit does not recompute. *)
  let computed = ref 0 in
  let v = Lru.find_or_add c "z" ~compute:(fun () -> incr computed; 42) in
  check_int "computed value" 42 v;
  let v' = Lru.find_or_add c "z" ~compute:(fun () -> incr computed; 43) in
  check_int "cached value" 42 v';
  check_int "compute ran once" 1 !computed;
  check_int "hits after find_or_add" 2 (Lru.hits c);
  check_int "misses after find_or_add" 3 (Lru.misses c)

let test_lru_update_moves_front () =
  let c = Lru.create ~capacity:2 () in
  Lru.put c "a" 1;
  Lru.put c "b" 2;
  (* Re-putting "a" refreshes it, so "b" is the one evicted. *)
  Lru.put c "a" 100;
  Lru.put c "c" 3;
  check_bool "b evicted" false (Lru.mem c "b");
  check_bool "updated value" true (Lru.get c "a" = Some 100);
  check_int "length at capacity" 2 (Lru.length c)

let test_lru_capacity_one () =
  let c = Lru.create ~capacity:1 () in
  Lru.put c 1 "one";
  Lru.put c 2 "two";
  check_bool "old gone" false (Lru.mem c 1);
  check_bool "new present" true (Lru.mem c 2);
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Lru.create: capacity must be at least 1") (fun () ->
      ignore (Lru.create ~capacity:0 ()));
  Lru.clear c;
  check_int "cleared" 0 (Lru.length c);
  check_bool "clear keeps counters" true (Lru.misses c >= 0)

let test_clock_monotonic () =
  let t0 = Clock.now_ns () in
  let t1 = Clock.now_ns () in
  check_bool "non-decreasing" true (Int64.compare t1 t0 >= 0);
  check_bool "elapsed non-negative" true (Int64.compare (Clock.elapsed_ns t0) 0L >= 0);
  check_float "ns_to_ms" 1.5 (Clock.ns_to_ms 1_500_000L);
  check_float "ns_to_s" 0.002 (Clock.ns_to_s 2_000_000L);
  check_bool "no deadline never expires" true (not (Clock.expired None));
  check_bool "zero timeout means none" true (Clock.deadline_after 0.0 = None);
  let d = Clock.deadline_after 3600.0 in
  check_bool "future deadline not expired" true (not (Clock.expired d));
  check_bool "past deadline expired" true (Clock.expired (Some (Int64.sub (Clock.now_ns ()) 1L)))

let test_lru_byte_budget () =
  (* Three 40-byte entries fit a 100-byte budget only two at a time. *)
  let c = Lru.create ~max_bytes:100 ~capacity:10 () in
  Lru.put ~bytes:40 c "a" 1;
  Lru.put ~bytes:40 c "b" 2;
  check_int "bytes accumulate" 80 (Lru.bytes_used c);
  Lru.put ~bytes:40 c "c" 3;
  check_bool "a evicted by byte budget" false (Lru.mem c "a");
  check_bool "b survives" true (Lru.mem c "b");
  check_bool "c survives" true (Lru.mem c "c");
  check_int "bytes after eviction" 80 (Lru.bytes_used c);
  check_int "byte eviction counted" 1 (Lru.evictions c);
  check_int "budget accessor" 100 (Lru.max_bytes c)

let test_lru_byte_replace () =
  (* Replacing a key re-accounts its bytes rather than double-counting. *)
  let c = Lru.create ~max_bytes:100 ~capacity:10 () in
  Lru.put ~bytes:60 c "a" 1;
  Lru.put ~bytes:20 c "a" 2;
  check_int "replace re-accounts" 20 (Lru.bytes_used c);
  check_bool "replaced value" true (Lru.get c "a" = Some 2);
  Lru.put ~bytes:80 c "b" 3;
  check_bool "both fit after shrink" true (Lru.mem c "a" && Lru.mem c "b");
  check_int "full budget used" 100 (Lru.bytes_used c)

let test_lru_oversized_rejected () =
  (* An entry bigger than the whole budget must not flush the cache. *)
  let c = Lru.create ~max_bytes:100 ~capacity:10 () in
  Lru.put ~bytes:50 c "a" 1;
  Lru.put ~bytes:500 c "huge" 2;
  check_bool "oversized not inserted" false (Lru.mem c "huge");
  check_bool "existing entry survives" true (Lru.mem c "a");
  check_int "bytes unchanged" 50 (Lru.bytes_used c);
  (* Re-putting an existing key with an oversized estimate drops the stale
     binding instead of keeping the old value under a lying size. *)
  Lru.put ~bytes:500 c "a" 3;
  check_bool "stale binding dropped" false (Lru.mem c "a");
  check_int "empty after drop" 0 (Lru.bytes_used c);
  (* clear resets the byte gauge. *)
  Lru.put ~bytes:30 c "x" 1;
  Lru.clear c;
  check_int "clear resets bytes" 0 (Lru.bytes_used c)

let test_clock_check () =
  (* Clock.check is the cooperative-cancellation primitive threaded
     through the WL/k-WL/HOM kernels. *)
  Clock.check None;
  Clock.check (Clock.deadline_after 3600.0);
  Alcotest.check_raises "past deadline raises" Clock.Deadline_exceeded (fun () ->
      Clock.check (Some (Int64.sub (Clock.now_ns ()) 1L)))

(* --- Int_sort: closure-free sort must equal Array.sort ------------------- *)

let prop_int_sort_matches =
  qtest ~count:200 "int_sort equals Array.sort"
    QCheck.(list int)
    (fun xs ->
      let a = Array.of_list xs in
      let b = Array.copy a in
      Glql_util.Int_sort.sort a;
      Array.sort compare b;
      a = b)

let test_int_sort_copy () =
  let a = [| 5; 3; 9; 3; 1 |] in
  let sorted = Glql_util.Int_sort.sorted_copy a in
  check_bool "sorted" true (sorted = [| 1; 3; 3; 5; 9 |]);
  check_bool "input preserved" true (a = [| 5; 3; 9; 3; 1 |])

(* --- Stable_hash: pinned vectors and placement properties ---------------- *)

let test_stable_hash_vectors () =
  (* Published FNV-1a 64-bit reference values: the hash must never
     change across builds or the sharded registry re-shards silently. *)
  Alcotest.(check int64) "offset basis" 0xcbf29ce484222325L (Glql_util.Stable_hash.hash64 "");
  Alcotest.(check int64) "'a'" 0xaf63dc4c8601ec8cL (Glql_util.Stable_hash.hash64 "a");
  Alcotest.(check int64) "'foobar'" 0x85944171f73967e8L (Glql_util.Stable_hash.hash64 "foobar");
  (* Placement pins: e2e and CI pick kill victims from these. *)
  check_int "petersen @3" 0 (Glql_util.Stable_hash.shard ~shards:3 "petersen");
  check_int "grid5x5 @3" 2 (Glql_util.Stable_hash.shard ~shards:3 "grid5x5")

let prop_stable_hash_shard =
  qtest ~count:200 "shard stable and in range"
    QCheck.(pair string (int_range 1 64))
    (fun (name, shards) ->
      let s1 = Glql_util.Stable_hash.shard ~shards name in
      let s2 = Glql_util.Stable_hash.shard ~shards name in
      s1 = s2 && s1 >= 0 && s1 < shards)

(* --- Json.parse: inverse of the printer --------------------------------- *)

let json_roundtrip_cases () =
  let module J = Glql_util.Json in
  let cases =
    [
      J.Null;
      J.Bool true;
      J.Int (-42);
      J.Str "he said \"hi\"\n\ttab";
      J.List [ J.Int 1; J.Str "x"; J.Null ];
      J.Obj [ ("b", J.Int 2); ("a", J.List []); ("nested", J.Obj [ ("k", J.Bool false) ]) ];
    ]
  in
  List.iter
    (fun j ->
      match J.parse (J.to_string j) with
      | Ok j' ->
          Alcotest.(check string) "roundtrip" (J.to_string j) (J.to_string j')
      | Error e -> Alcotest.failf "parse failed: %s" e)
    cases;
  (* Field order is preserved — the router's merge relies on it. *)
  (match J.parse "{\"z\":1,\"a\":2}" with
  | Ok j -> Alcotest.(check string) "field order kept" "{\"z\":1,\"a\":2}" (J.to_string j)
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (* Rejections. *)
  check_bool "trailing garbage" true (Result.is_error (J.parse "{} x"));
  check_bool "unterminated string" true (Result.is_error (J.parse "\"abc"));
  check_bool "bare word" true (Result.is_error (J.parse "petersen"))

let prop_json_int_roundtrip =
  qtest ~count:200 "json int roundtrip" QCheck.int (fun i ->
      match Glql_util.Json.parse (string_of_int i) with
      | Ok (Glql_util.Json.Int j) -> i = j
      | _ -> false)

let suite =
  ( "util",
    [
      case "rng determinism" test_determinism;
      case "rng seeds differ" test_different_seeds;
      case "rng split" test_split_independent;
      prop_float_range;
      prop_int_range;
      prop_shuffle_permutation;
      prop_sample_distinct;
      case "gaussian moments" test_gaussian_moments;
      case "multiset signature" test_multiset_signature;
      case "multiset input preserved" test_multiset_no_mutation;
      case "list signature order" test_int_list_order_sensitive;
      case "list signature unambiguous" test_list_signature_unambiguous;
      case "float vector rounding" test_float_vector_rounding;
      case "float vector -0" test_float_vector_negative_zero;
      case "interner" test_interner;
      case "table rendering" test_table_rendering;
      case "float formatting" test_fmt_float;
      case "lru eviction order" test_lru_eviction_order;
      case "lru counters" test_lru_counters;
      case "lru update refreshes" test_lru_update_moves_front;
      case "lru capacity edge cases" test_lru_capacity_one;
      case "clock helpers" test_clock_monotonic;
      case "lru byte budget eviction" test_lru_byte_budget;
      case "lru byte budget replace" test_lru_byte_replace;
      case "lru oversized entries rejected" test_lru_oversized_rejected;
      case "clock cooperative check" test_clock_check;
      prop_int_sort_matches;
      case "int_sort sorted_copy" test_int_sort_copy;
      case "stable hash pinned vectors" test_stable_hash_vectors;
      prop_stable_hash_shard;
      case "json parse roundtrip" json_roundtrip_cases;
      prop_json_int_roundtrip;
    ] )
